// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "agg/combiner.h"

#include <algorithm>
#include <bit>

#include "mr/engine.h"
#include "obs/trace.h"

namespace casm {

EarlyAggCombiner::EarlyAggCombiner(const Workflow* wf,
                                   const LocalAggOptions& options,
                                   TraceRecorder* trace)
    : wf_(wf),
      schema_(wf->schema().get()),
      options_(options),
      trace_(trace),
      basics_(wf->BasicMeasures()),
      num_attrs_(schema_->num_attributes()),
      value_width_(1 + num_attrs_ + Accumulator::kPartialSize) {
  value_.resize(static_cast<size_t>(value_width_));
}

void EarlyAggCombiner::EmitPartial(const std::vector<int64_t>& group_key,
                                   const Accumulator& acc, Emitter* emitter) {
  const int64_t* block = group_key.data();
  const int mi = static_cast<int>(group_key[static_cast<size_t>(num_attrs_)]);
  value_[0] = mi;
  for (int a = 0; a < num_attrs_; ++a) {
    value_[static_cast<size_t>(1 + a)] =
        group_key[static_cast<size_t>(num_attrs_ + 1 + a)];
  }
  double partial[Accumulator::kPartialSize];
  acc.ToPartial(partial);
  for (int i = 0; i < Accumulator::kPartialSize; ++i) {
    value_[static_cast<size_t>(1 + num_attrs_ + i)] =
        std::bit_cast<int64_t>(partial[i]);
  }
  emitter->Emit(block, value_.data());
  ++pairs_out_;
}

void EarlyAggCombiner::Flush(Emitter* emitter) {
  if (partials_.empty()) return;
  for (const auto& [gk, acc] : partials_) EmitPartial(gk, acc, emitter);
  partials_.clear();
  ++flushes_;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->RecordInstant("localagg", "combiner-flush", /*task=*/-1,
                          "pairs=" + std::to_string(pairs_out_));
  }
}

void EarlyAggCombiner::AddRecord(const int64_t* block_key, const int64_t* row,
                                 Emitter* emitter) {
  for (int mi : basics_) {
    const Measure& m = wf_->measure(mi);
    group_key_.assign(block_key, block_key + num_attrs_);
    group_key_.push_back(mi);
    Coords coords = RegionOfRecord(*schema_, m.granularity, row);
    group_key_.insert(group_key_.end(), coords.begin(), coords.end());
    ++pairs_in_;
    if (bypassed_) {
      Accumulator acc(m.fn);
      acc.Add(static_cast<double>(row[m.field]));
      EmitPartial(group_key_, acc, emitter);
      continue;
    }
    auto it = partials_.find(group_key_);
    if (it == partials_.end()) {
      it = partials_.emplace(group_key_, Accumulator(m.fn)).first;
    }
    it->second.Add(static_cast<double>(row[m.field]));
  }
  if (bypassed_) return;

  // Cardinality bypass: one check, after the first morsel of pairs. The
  // retained fraction IS the achieved reduction — near 1.0 the table is
  // pure overhead (groups are ~unique within the split) and the rest of
  // the split emits directly.
  const int64_t check_after =
      std::max<int64_t>(1024, options_.morsel_rows) *
      std::max<int64_t>(1, static_cast<int64_t>(basics_.size()));
  if (!bypass_checked_ && pairs_in_ >= check_after) {
    bypass_checked_ = true;
    const double retained = static_cast<double>(partials_.size()) /
                            static_cast<double>(pairs_in_);
    if (retained >= options_.combiner_bypass_ratio) {
      bypassed_ = true;
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->RecordInstant(
            "localagg", "combiner-bypass", /*task=*/-1,
            "retained=" + std::to_string(retained));
      }
      Flush(emitter);
      return;
    }
  }
  // Bounded memory: a full table spills its partials to the shuffle's
  // global hash partitions; reducers merge per-group partials regardless.
  if (static_cast<int64_t>(partials_.size()) >= options_.combiner_max_entries) {
    Flush(emitter);
  }
}

}  // namespace casm
