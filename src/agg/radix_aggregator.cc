// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Two-phase radix partition + per-partition aggregate with central merge
// (engine (b) of the src/agg subsystem). Phase 1 scatters row indices
// into 2^radix_bits partitions by a hash of each row's finest-granularity
// region, so every finest region lands wholly in one partition and each
// partition aggregates with a cache-sized hash table. Coarser-granularity
// groups can span partitions; a central pass merges the per-partition
// accumulators — in fixed partition order, keeping results independent of
// thread scheduling — via Accumulator::Merge (valid for every aggregate
// class, including holistic).

#include <algorithm>
#include <chrono>

#include "agg/engines.h"
#include "common/thread_pool.h"

namespace casm {
namespace agg_internal {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RadixAggregator::RadixAggregator(const Workflow* wf,
                                 const SortScanEvaluator* sortscan,
                                 const LocalAggOptions& options)
    : wf_(wf),
      sortscan_(sortscan),
      options_(options),
      basics_(CollectBasics(*wf)) {}

MeasureResultSet RadixAggregator::DoEvaluate(const LocalAggContext& ctx,
                                             LocalEvalStats* stats,
                                             LocalAggEngine* chosen) const {
  (void)chosen;
  const auto start = std::chrono::steady_clock::now();
  MeasureResultSet results(wf_->num_measures());
  if (ctx.phase != LocalEvalPhase::kFull) {
    if (stats != nullptr) stats->records += ctx.n;
    return results;
  }
  const Schema& schema = *wf_->schema();
  const int width = schema.num_attributes();
  const size_t num_basics = basics_.size();
  const int bits = std::clamp(options_.radix_bits, 0, 16);
  const size_t partitions = size_t{1} << bits;
  const uint64_t mask = partitions - 1;

  // Phase 1: scatter row indices by finest-region hash. Serial: one hash
  // per row, and a deterministic within-partition row order for phase 2.
  std::vector<std::vector<int64_t>> part_rows(partitions);
  const size_t expect = static_cast<size_t>(ctx.n) / partitions + 1;
  for (std::vector<int64_t>& rows : part_rows) rows.reserve(expect);
  for (int64_t r = 0; r < ctx.n; ++r) {
    if ((r & 4095) == 0 && ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      return results;
    }
    const uint64_t h = FinestRegionHash(schema, sortscan_->attr_order(),
                                        sortscan_->sort_levels(),
                                        ctx.rows + r * width);
    part_rows[h & mask].push_back(r);
  }

  // Phase 2: aggregate each partition independently.
  std::vector<std::vector<AccMap>> part_acc(partitions);
  auto eval_partition = [&](size_t p) {
    std::vector<AccMap>& maps = part_acc[p];
    maps.resize(num_basics);
    for (int64_t r : part_rows[p]) {
      const int64_t* row = ctx.rows + r * width;
      for (size_t b = 0; b < num_basics; ++b) {
        const BasicMeasure& info = basics_[b];
        Coords coords = RegionOfRecord(schema, *info.granularity, row);
        auto it = maps[b].find(coords);
        if (it == maps[b].end()) {
          it = maps[b].emplace(std::move(coords), Accumulator(info.fn)).first;
        }
        it->second.Add(static_cast<double>(row[info.field]));
      }
    }
  };
  if (ctx.pool == nullptr) {
    for (size_t p = 0; p < partitions; ++p) {
      if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
      eval_partition(p);
    }
  } else {
    (void)ctx.pool->ParallelFor(partitions, eval_partition, ctx.cancel);
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
  }

  // Central merge in partition order: groups at the finest granularity
  // are unique to their partition (emplace hits), coarser groups that
  // span partitions merge accumulators.
  std::vector<AccMap> total(num_basics);
  for (size_t p = 0; p < partitions; ++p) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
    for (size_t b = 0; b < num_basics; ++b) {
      AccMap& map = total[b];
      for (auto& [coords, acc] : part_acc[p][b]) {
        auto it = map.find(coords);
        if (it == map.end()) {
          map.emplace(coords, std::move(acc));
        } else {
          it->second.Merge(acc);
        }
      }
    }
  }
  FinalizeAndDerive(*wf_, basics_, std::move(total), ctx.cancel, &results);

  if (stats != nullptr) {
    stats->records += ctx.n;
    stats->hashed_measures += static_cast<int64_t>(num_basics);
    stats->eval_seconds += SecondsSince(start);
  }
  return results;
}

}  // namespace agg_internal
}  // namespace casm
