// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Two-phase radix partition + per-partition aggregate with central merge
// (engine (b) of the src/agg subsystem). Phase 1 scatters row indices
// into 2^radix_bits partitions by a hash of each row's finest-granularity
// region, so every finest region lands wholly in one partition and each
// partition aggregates with a cache-sized hash table. Coarser-granularity
// groups can span partitions; a central pass merges the per-partition
// accumulators — in fixed partition order, keeping results independent of
// thread scheduling — via Accumulator::Merge (valid for every aggregate
// class, including holistic).

#include <algorithm>
#include <chrono>

#include "agg/batch.h"
#include "agg/engines.h"
#include "common/thread_pool.h"

namespace casm {
namespace agg_internal {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RadixAggregator::RadixAggregator(const Workflow* wf,
                                 const SortScanEvaluator* sortscan,
                                 const LocalAggOptions& options)
    : wf_(wf),
      sortscan_(sortscan),
      options_(options),
      basics_(CollectBasics(*wf)) {}

MeasureResultSet RadixAggregator::DoEvaluate(const LocalAggContext& ctx,
                                             LocalEvalStats* stats,
                                             LocalAggEngine* chosen) const {
  (void)chosen;
  const auto start = std::chrono::steady_clock::now();
  MeasureResultSet results(wf_->num_measures());
  if (ctx.phase != LocalEvalPhase::kFull) {
    if (stats != nullptr) stats->records += ctx.n;
    return results;
  }
  const Schema& schema = *wf_->schema();
  const int width = schema.num_attributes();
  const size_t num_basics = basics_.size();
  const int bits = std::clamp(options_.radix_bits, 0, 16);
  const size_t partitions = size_t{1} << bits;
  const uint64_t mask = partitions - 1;

  // Phase 1: scatter row indices by finest-region hash. Serial: one hash
  // per row, and a deterministic within-partition row order for phase 2.
  // Batch path: the hashes of a whole batch are computed columnar —
  // transpose + one MapFromFinestColumn per sort attribute + one
  // FinestRegionHashColumns pass — bit-identical to per-row hashing, so
  // the scatter is unchanged.
  // Clamped to the block size, with the batch_min_block_rows cutoff: a
  // 4K-row mapper for a tiny block would cost more than the block itself.
  const int64_t batch_cap =
      ctx.n < options_.batch_min_block_rows
          ? 0
          : std::min(ResolveBatchRows(options_.batch_rows), ctx.n);
  int64_t batches = 0;
  std::vector<std::vector<int64_t>> part_rows(partitions);
  const size_t expect = static_cast<size_t>(ctx.n) / partitions + 1;
  for (std::vector<int64_t>& rows : part_rows) rows.reserve(expect);
  const std::vector<int>& attr_order = sortscan_->attr_order();
  const std::vector<LevelId>& sort_levels = sortscan_->sort_levels();
  if (batch_cap > 0) {
    RegionBatchMapper mapper(&schema, batch_cap);
    std::vector<const int64_t*> sort_cols(attr_order.size());
    std::vector<uint64_t> hashes(static_cast<size_t>(batch_cap));
    for (int64_t bb = 0; bb < ctx.n; bb += batch_cap) {
      if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
      const int64_t bn = std::min(batch_cap, ctx.n - bb);
      mapper.Load(ctx.rows + bb * width, bn);
      ++batches;
      for (size_t j = 0; j < attr_order.size(); ++j) {
        const int attr = attr_order[j];
        sort_cols[j] = mapper.MappedColumn(
            attr, sort_levels[static_cast<size_t>(attr)]);
      }
      FinestRegionHashColumns(sort_cols.data(),
                              static_cast<int>(attr_order.size()), bn,
                              hashes.data());
      for (int64_t i = 0; i < bn; ++i) {
        part_rows[hashes[static_cast<size_t>(i)] & mask].push_back(bb + i);
      }
    }
  } else {
    for (int64_t r = 0; r < ctx.n; ++r) {
      if ((r & 4095) == 0 && ctx.cancel != nullptr &&
          ctx.cancel->cancelled()) {
        return results;
      }
      const uint64_t h = FinestRegionHash(schema, attr_order, sort_levels,
                                          ctx.rows + r * width);
      part_rows[h & mask].push_back(r);
    }
  }

  // Phase 2: aggregate each partition independently. The batch path
  // gathers the partition's (non-contiguous) rows into a row-major
  // scratch block batch by batch, then maps coordinates columnar exactly
  // like phase 1 — same Add order as the row path, identical results.
  std::vector<std::vector<AccMap>> part_acc(partitions);
  auto eval_partition = [&](size_t p) {
    std::vector<AccMap>& maps = part_acc[p];
    maps.resize(num_basics);
    if (batch_cap > 0) {
      const std::vector<int64_t>& rows = part_rows[p];
      const int64_t count = static_cast<int64_t>(rows.size());
      if (count == 0) return;
      // Partition-local clamp for the same reason as above: most
      // partitions hold far fewer rows than the configured batch.
      const int64_t cap = std::min(batch_cap, count);
      RegionBatchMapper mapper(&schema, cap);
      std::vector<std::vector<const int64_t*>> gran_cols(num_basics);
      std::vector<int64_t> gather(
          static_cast<size_t>(cap) * static_cast<size_t>(width));
      Coords scratch(static_cast<size_t>(width));
      for (int64_t bb = 0; bb < count; bb += cap) {
        const int64_t bn = std::min(cap, count - bb);
        for (int64_t i = 0; i < bn; ++i) {
          const int64_t* row =
              ctx.rows + rows[static_cast<size_t>(bb + i)] * width;
          std::copy(row, row + width,
                    gather.data() + static_cast<size_t>(i) * width);
        }
        mapper.Load(gather.data(), bn);
        for (size_t b = 0; b < num_basics; ++b) {
          mapper.GranularityColumns(*basics_[b].granularity, &gran_cols[b]);
        }
        for (int64_t i = 0; i < bn; ++i) {
          for (size_t b = 0; b < num_basics; ++b) {
            const BasicMeasure& info = basics_[b];
            RegionBatchMapper::FillCoords(gran_cols[b], i, &scratch);
            auto it = maps[b].find(scratch);
            if (it == maps[b].end()) {
              it = maps[b].emplace(scratch, Accumulator(info.fn)).first;
            }
            it->second.Add(static_cast<double>(
                mapper.raw_column(info.field)[i]));
          }
        }
      }
      return;
    }
    for (int64_t r : part_rows[p]) {
      const int64_t* row = ctx.rows + r * width;
      for (size_t b = 0; b < num_basics; ++b) {
        const BasicMeasure& info = basics_[b];
        Coords coords = RegionOfRecord(schema, *info.granularity, row);
        auto it = maps[b].find(coords);
        if (it == maps[b].end()) {
          it = maps[b].emplace(std::move(coords), Accumulator(info.fn)).first;
        }
        it->second.Add(static_cast<double>(row[info.field]));
      }
    }
  };
  if (ctx.pool == nullptr) {
    for (size_t p = 0; p < partitions; ++p) {
      if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
      eval_partition(p);
    }
  } else {
    (void)ctx.pool->ParallelFor(partitions, eval_partition, ctx.cancel);
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
  }

  // Central merge in partition order: groups at the finest granularity
  // are unique to their partition (emplace hits), coarser groups that
  // span partitions merge accumulators.
  std::vector<AccMap> total(num_basics);
  for (size_t p = 0; p < partitions; ++p) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) return results;
    for (size_t b = 0; b < num_basics; ++b) {
      AccMap& map = total[b];
      for (auto& [coords, acc] : part_acc[p][b]) {
        auto it = map.find(coords);
        if (it == map.end()) {
          map.emplace(coords, std::move(acc));
        } else {
          it->second.Merge(acc);
        }
      }
    }
  }
  FinalizeAndDerive(*wf_, basics_, std::move(total), ctx.cancel, &results);

  if (stats != nullptr) {
    stats->records += ctx.n;
    stats->hashed_measures += static_cast<int64_t>(num_basics);
    stats->agg_batches += batches;
    stats->eval_seconds += SecondsSince(start);
  }
  return results;
}

}  // namespace agg_internal
}  // namespace casm
