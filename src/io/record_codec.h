// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Binary codec for measure tables: serializes a MeasureValueMap (coords →
// value) or a whole MeasureResultSet to a byte string and back. The
// encoding is *canonical* — entries are sorted by coordinates before
// writing — so encoding the same logical result always yields the same
// bytes regardless of hash-map iteration order. The checkpoint subsystem
// relies on this for bit-identical restore verification; the DFS volume
// checksums the bytes.
//
// Layout (all integers little-endian):
//   MeasureValueMap:  "CMV1" u32 coord_width  u64 count
//                     count × (coord_width × i64 coords, f64 value bits)
//   MeasureResultSet: "CRS1" u32 num_measures
//                     num_measures × (u64 payload_size, payload bytes)

#ifndef CASM_IO_RECORD_CODEC_H_
#define CASM_IO_RECORD_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "local/measure_table.h"

namespace casm {

/// Canonical (coords-sorted) encoding of one measure's value map.
std::string EncodeMeasureValues(const MeasureValueMap& values);

/// Inverse of EncodeMeasureValues. InvalidArgument on truncated bytes,
/// a bad magic, inconsistent coordinate widths, or duplicate coords.
Result<MeasureValueMap> DecodeMeasureValues(std::string_view bytes);

/// Canonical encoding of a full result set (one length-prefixed
/// EncodeMeasureValues payload per measure).
std::string EncodeMeasureResultSet(const MeasureResultSet& results);

/// Inverse of EncodeMeasureResultSet.
Result<MeasureResultSet> DecodeMeasureResultSet(std::string_view bytes);

}  // namespace casm

#endif  // CASM_IO_RECORD_CODEC_H_
