// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "io/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "data/record_batch.h"

namespace casm {
namespace {

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(Trim(cell));
  return cells;
}

}  // namespace

Result<Table> ReadTableCsv(SchemaPtr schema, std::string_view csv) {
  std::istringstream stream{std::string(csv)};
  std::string line;
  int line_number = 0;

  // Header: locate each schema attribute's column.
  std::vector<int> column_of_attr(
      static_cast<size_t>(schema->num_attributes()), -1);
  if (!std::getline(stream, line)) {
    return Status::InvalidArgument("CSV input is empty");
  }
  ++line_number;
  std::vector<std::string> header = SplitLine(line);
  for (int a = 0; a < schema->num_attributes(); ++a) {
    const std::string& name = schema->attribute(a).name();
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] == name) {
        column_of_attr[static_cast<size_t>(a)] = static_cast<int>(c);
        break;
      }
    }
    if (column_of_attr[static_cast<size_t>(a)] < 0) {
      return Status::InvalidArgument("CSV header is missing attribute '" +
                                     name + "'");
    }
  }

  Table table(schema);
  // Parsed rows accumulate in a columnar RecordBatch and append to the
  // table one batch at a time (Table::AppendBatch) instead of row by row.
  RecordBatch batch(table.row_width(), BatchSizeFromEnv());
  std::vector<int64_t> row(static_cast<size_t>(schema->num_attributes()));
  while (std::getline(stream, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = SplitLine(line);
    for (int a = 0; a < schema->num_attributes(); ++a) {
      const int column = column_of_attr[static_cast<size_t>(a)];
      if (column >= static_cast<int>(cells.size())) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": missing column " +
            std::to_string(column + 1));
      }
      const std::string& cell = cells[static_cast<size_t>(column)];
      char* end = nullptr;
      const int64_t value = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": '" + cell +
                                       "' is not an integer");
      }
      const Hierarchy& h = schema->attribute(a);
      if (value < 0 || value >= h.cardinality()) {
        return Status::OutOfRange(
            "line " + std::to_string(line_number) + ": value " + cell +
            " outside the domain of '" + h.name() + "' [0, " +
            std::to_string(h.cardinality()) + ")");
      }
      row[static_cast<size_t>(a)] = value;
    }
    if (batch.num_rows() == batch.capacity()) {
      table.AppendBatch(batch);
      batch.Clear();
    }
    batch.AppendRows(row.data(), 1);
  }
  table.AppendBatch(batch);
  return table;
}

Result<Table> ReadTableCsvFile(SchemaPtr schema, const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return ReadTableCsv(std::move(schema), contents.str());
}

std::string WriteMeasureCsv(const Workflow& wf,
                            const MeasureResultSet& results, int measure) {
  const Schema& schema = *wf.schema();
  const Measure& m = wf.measure(measure);
  std::ostringstream out;

  std::vector<int> attrs;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (!schema.attribute(a).is_all(m.granularity.level(a))) {
      attrs.push_back(a);
    }
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) out << ",";
    out << schema.attribute(attrs[i]).name() << ":"
        << schema.attribute(attrs[i]).level_name(
               m.granularity.level(attrs[i]));
  }
  if (!attrs.empty()) out << ",";
  out << "value\n";

  for (const MeasureResult& result : results.Sorted(measure)) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i) out << ",";
      out << result.coords[static_cast<size_t>(attrs[i])];
    }
    if (!attrs.empty()) out << ",";
    out << result.value << "\n";
  }
  return out.str();
}

}  // namespace casm
