// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// CSV ingest and export. Input records arrive as CSV with a header row
// naming schema attributes (order-free; extra columns are ignored); values
// are integers in each attribute's finest domain. Measure results export
// as CSV with one column per non-ALL attribute plus the value.

#ifndef CASM_IO_CSV_H_
#define CASM_IO_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/table.h"
#include "local/measure_table.h"
#include "measure/workflow.h"

namespace casm {

/// Parses CSV text into a Table over `schema`. The first row must name
/// every schema attribute (extras ignored). Errors carry 1-based line
/// numbers.
Result<Table> ReadTableCsv(SchemaPtr schema, std::string_view csv);

/// Reads `path` and parses it with ReadTableCsv.
Result<Table> ReadTableCsvFile(SchemaPtr schema, const std::string& path);

/// Renders the results of `measure` as CSV, sorted by region coordinates:
/// one column per attribute the measure groups by, then "value".
std::string WriteMeasureCsv(const Workflow& wf,
                            const MeasureResultSet& results, int measure);

}  // namespace casm

#endif  // CASM_IO_CSV_H_
