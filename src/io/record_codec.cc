// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "io/record_codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace casm {
namespace {

constexpr char kMapMagic[4] = {'C', 'M', 'V', '1'};
constexpr char kSetMagic[4] = {'C', 'R', 'S', '1'};

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked little-endian reader over the input bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  Status ExpectMagic(const char magic[4]) {
    if (bytes_.size() - pos_ < 4 ||
        std::memcmp(bytes_.data() + pos_, magic, 4) != 0) {
      return Status::InvalidArgument("record codec: bad or missing magic");
    }
    pos_ += 4;
    return Status::OK();
  }

  Result<uint32_t> ReadU32() {
    CASM_ASSIGN_OR_RETURN(uint64_t v, ReadLittleEndian(4));
    return static_cast<uint32_t>(v);
  }
  Result<uint64_t> ReadU64() { return ReadLittleEndian(8); }
  Result<double> ReadF64() {
    CASM_ASSIGN_OR_RETURN(uint64_t bits, ReadLittleEndian(8));
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<int64_t> ReadI64() {
    CASM_ASSIGN_OR_RETURN(uint64_t v, ReadLittleEndian(8));
    return static_cast<int64_t>(v);
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  std::string_view Take(size_t n) {
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  Result<uint64_t> ReadLittleEndian(int width) {
    if (remaining() < static_cast<size_t>(width)) {
      return Status::InvalidArgument("record codec: truncated input");
    }
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += static_cast<size_t>(width);
    return v;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeMeasureValues(const MeasureValueMap& values) {
  std::vector<const MeasureValueMap::value_type*> entries;
  entries.reserve(values.size());
  for (const auto& entry : values) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  const uint32_t coord_width =
      entries.empty() ? 0 : static_cast<uint32_t>(entries[0]->first.size());
  std::string out;
  out.reserve(16 + entries.size() * (coord_width + 1) * 8);
  out.append(kMapMagic, 4);
  AppendU32(&out, coord_width);
  AppendU64(&out, entries.size());
  for (const auto* entry : entries) {
    CASM_CHECK_EQ(static_cast<uint32_t>(entry->first.size()), coord_width)
        << "inconsistent coord widths in one MeasureValueMap";
    for (int64_t c : entry->first) AppendU64(&out, static_cast<uint64_t>(c));
    AppendF64(&out, entry->second);
  }
  return out;
}

Result<MeasureValueMap> DecodeMeasureValues(std::string_view bytes) {
  Cursor cursor(bytes);
  CASM_RETURN_IF_ERROR(cursor.ExpectMagic(kMapMagic));
  CASM_ASSIGN_OR_RETURN(uint32_t coord_width, cursor.ReadU32());
  CASM_ASSIGN_OR_RETURN(uint64_t count, cursor.ReadU64());
  const uint64_t entry_bytes = (static_cast<uint64_t>(coord_width) + 1) * 8;
  if (cursor.remaining() != count * entry_bytes) {
    return Status::InvalidArgument("record codec: payload size mismatch");
  }
  MeasureValueMap values;
  values.reserve(static_cast<size_t>(count));
  Coords coords(coord_width);
  for (uint64_t i = 0; i < count; ++i) {
    for (uint32_t c = 0; c < coord_width; ++c) {
      CASM_ASSIGN_OR_RETURN(coords[c], cursor.ReadI64());
    }
    CASM_ASSIGN_OR_RETURN(double value, cursor.ReadF64());
    if (!values.emplace(coords, value).second) {
      return Status::InvalidArgument("record codec: duplicate coordinates");
    }
  }
  return values;
}

std::string EncodeMeasureResultSet(const MeasureResultSet& results) {
  std::string out;
  out.append(kSetMagic, 4);
  AppendU32(&out, static_cast<uint32_t>(results.num_measures()));
  for (int m = 0; m < results.num_measures(); ++m) {
    const std::string payload = EncodeMeasureValues(results.values(m));
    AppendU64(&out, payload.size());
    out.append(payload);
  }
  return out;
}

Result<MeasureResultSet> DecodeMeasureResultSet(std::string_view bytes) {
  Cursor cursor(bytes);
  CASM_RETURN_IF_ERROR(cursor.ExpectMagic(kSetMagic));
  CASM_ASSIGN_OR_RETURN(uint32_t num_measures, cursor.ReadU32());
  MeasureResultSet results(static_cast<int>(num_measures));
  for (uint32_t m = 0; m < num_measures; ++m) {
    CASM_ASSIGN_OR_RETURN(uint64_t size, cursor.ReadU64());
    if (cursor.remaining() < size) {
      return Status::InvalidArgument("record codec: truncated measure payload");
    }
    CASM_ASSIGN_OR_RETURN(results.mutable_values(static_cast<int>(m)),
                          DecodeMeasureValues(cursor.Take(size)));
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument("record codec: trailing bytes");
  }
  return results;
}

}  // namespace casm
