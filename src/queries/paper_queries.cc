// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "queries/paper_queries.h"

#include <utility>

#include "common/logging.h"
#include "queries/paper_data.h"

namespace casm {
namespace {

Granularity Gran(const SchemaPtr& schema,
                 std::vector<std::pair<std::string, std::string>> parts) {
  Result<Granularity> g = Granularity::Of(*schema, parts);
  CASM_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

Workflow BuildOrDie(WorkflowBuilder&& builder) {
  Result<Workflow> wf = std::move(builder).Build();
  CASM_CHECK(wf.ok()) << wf.status().ToString();
  return std::move(wf).value();
}

Workflow MakeQ1(const SchemaPtr& schema) {
  // Three independent basic measures over different fine region sets. They
  // share the (D1, T1) grouping so the least common ancestor key stays
  // fine-grained (<D1:value, T1:minute>) and the query parallelizes well.
  WorkflowBuilder b(schema);
  b.AddBasic("Q1a", Gran(schema, {{"D1", "value"}, {"T1", "minute"}}),
             AggregateFn::kCount, "D1");
  b.AddBasic("Q1b",
             Gran(schema, {{"D1", "value"}, {"D2", "value"}, {"T1", "minute"}}),
             AggregateFn::kSum, "D3");
  b.AddBasic("Q1c",
             Gran(schema, {{"D1", "value"}, {"D3", "tier1"}, {"T1", "minute"}}),
             AggregateFn::kMax, "D4");
  return BuildOrDie(std::move(b));
}

Workflow MakeQ2(const SchemaPtr& schema) {
  WorkflowBuilder b(schema);
  int m1 = b.AddBasic("Q2.base", Gran(schema, {{"D2", "value"}, {"T1", "hour"}}),
                      AggregateFn::kSum, "D1");
  b.AddSourceAggregate("Q2.parent",
                       Gran(schema, {{"D2", "tier1"}, {"T1", "hour"}}),
                       AggregateFn::kAvg, {WorkflowBuilder::ChildParent(m1)});
  return BuildOrDie(std::move(b));
}

Workflow MakeQ3(const SchemaPtr& schema) {
  WorkflowBuilder b(schema);
  Granularity fine = Gran(schema, {{"D1", "value"}, {"T1", "hour"}});
  Granularity mid = Gran(schema, {{"D1", "tier1"}, {"T1", "day"}});
  Granularity coarse = Gran(schema, {{"D1", "tier2"}, {"T1", "day"}});
  int m1 = b.AddBasic("Q3.sum", fine, AggregateFn::kSum, "D2");
  int m2 = b.AddBasic("Q3.count", fine, AggregateFn::kCount, "D2");
  int m3 = b.AddSourceAggregate("Q3.sum.up", mid, AggregateFn::kSum,
                                {WorkflowBuilder::ChildParent(m1)});
  int m4 = b.AddSourceAggregate("Q3.count.up", mid, AggregateFn::kSum,
                                {WorkflowBuilder::ChildParent(m2)});
  b.AddSourceAggregate("Q3.top", coarse, AggregateFn::kAvg,
                       {WorkflowBuilder::ChildParent(m3),
                        WorkflowBuilder::ChildParent(m4)});
  return BuildOrDie(std::move(b));
}

Workflow MakeQ4(const SchemaPtr& schema) {
  WorkflowBuilder b(schema);
  Granularity fine = Gran(schema, {{"D1", "value"}, {"T1", "hour"}});
  Granularity coarse = Gran(schema, {{"D1", "tier1"}, {"T1", "day"}});
  int m1 = b.AddBasic("Q4.fine", fine, AggregateFn::kSum, "D2");
  int m2 = b.AddBasic("Q4.coarse", coarse, AggregateFn::kCount, "D2");
  b.AddSourceAggregate(
      "Q4.combined", coarse, AggregateFn::kSum,
      {WorkflowBuilder::Self(m2), WorkflowBuilder::ChildParent(m1)});
  return BuildOrDie(std::move(b));
}

Workflow MakeQ5(const SchemaPtr& schema) {
  WorkflowBuilder b(schema);
  Granularity hourly = Gran(schema, {{"D1", "value"}, {"T1", "hour"}});
  int m1 = b.AddBasic("Q5.hourly", hourly, AggregateFn::kSum, "D2");
  b.AddSourceAggregate("Q5.trailing", hourly, AggregateFn::kAvg,
                       {b.Sibling(m1, "T1", -10, -1)});
  return BuildOrDie(std::move(b));
}

Workflow MakeQ6(const SchemaPtr& schema) {
  WorkflowBuilder b(schema);
  Granularity minute = Gran(schema, {{"D1", "value"}, {"T1", "minute"}});
  Granularity hour = Gran(schema, {{"D1", "value"}, {"T1", "hour"}});
  Granularity mid_hour = Gran(schema, {{"D1", "tier1"}, {"T1", "hour"}});
  int m1 = b.AddBasic("Q6.m1", minute, AggregateFn::kMedian, "D2");
  int m2 = b.AddBasic("Q6.m2", hour, AggregateFn::kMedian, "D3");
  int m3 = b.AddExpression(
      "Q6.ratio", minute, Expression::Source(0) / Expression::Source(1),
      {WorkflowBuilder::Self(m1), WorkflowBuilder::ParentChild(m2)});
  int m4 = b.AddSourceAggregate("Q6.rollup", mid_hour, AggregateFn::kSum,
                                {WorkflowBuilder::ChildParent(m3)});
  b.AddSourceAggregate("Q6.window", mid_hour, AggregateFn::kAvg,
                       {b.Sibling(m4, "T1", -24, 0)});
  return BuildOrDie(std::move(b));
}

Workflow MakeDs(const SchemaPtr& schema, PaperQuery query) {
  Granularity base = Granularity::Top(*schema);
  Granularity up = Granularity::Top(*schema);
  switch (query) {
    case PaperQuery::kDS0:
      base = Gran(schema, {{"D1", "tier3"}, {"T1", "day"}});
      up = Gran(schema, {{"T1", "day"}});
      break;
    case PaperQuery::kDS1:
      base = Gran(schema, {{"D1", "tier1"}, {"T1", "day"}});
      up = Gran(schema, {{"D1", "tier2"}, {"T1", "day"}});
      break;
    case PaperQuery::kDS2:
      base = Gran(schema,
                  {{"D1", "value"}, {"D2", "value"}, {"T1", "minute"}});
      up = Gran(schema, {{"D1", "value"}, {"D2", "value"}, {"T1", "hour"}});
      break;
    default:
      CASM_CHECK(false);
  }
  WorkflowBuilder b(schema);
  int m1 = b.AddBasic("DS.count", base, AggregateFn::kCount, "D2");
  int m2 = b.AddBasic("DS.sum", base, AggregateFn::kSum, "D2");
  int m3 = b.AddExpression(
      "DS.mean", base, Expression::Source(1) / Expression::Source(0),
      {WorkflowBuilder::Self(m1), WorkflowBuilder::Self(m2)});
  b.AddSourceAggregate("DS.up", up, AggregateFn::kAvg,
                       {WorkflowBuilder::ChildParent(m3)});
  return BuildOrDie(std::move(b));
}

}  // namespace

const char* PaperQueryName(PaperQuery query) {
  switch (query) {
    case PaperQuery::kQ1:
      return "Q1";
    case PaperQuery::kQ2:
      return "Q2";
    case PaperQuery::kQ3:
      return "Q3";
    case PaperQuery::kQ4:
      return "Q4";
    case PaperQuery::kQ5:
      return "Q5";
    case PaperQuery::kQ6:
      return "Q6";
    case PaperQuery::kDS0:
      return "DS0";
    case PaperQuery::kDS1:
      return "DS1";
    case PaperQuery::kDS2:
      return "DS2";
  }
  return "unknown";
}

std::vector<PaperQuery> AllPaperQueries() {
  return {PaperQuery::kQ1,  PaperQuery::kQ2,  PaperQuery::kQ3,
          PaperQuery::kQ4,  PaperQuery::kQ5,  PaperQuery::kQ6,
          PaperQuery::kDS0, PaperQuery::kDS1, PaperQuery::kDS2};
}

Workflow MakePaperQuery(PaperQuery query) {
  return MakePaperQuery(query, PaperSchema());
}

Workflow MakePaperQuery(PaperQuery query, const SchemaPtr& schema) {
  switch (query) {
    case PaperQuery::kQ1:
      return MakeQ1(schema);
    case PaperQuery::kQ2:
      return MakeQ2(schema);
    case PaperQuery::kQ3:
      return MakeQ3(schema);
    case PaperQuery::kQ4:
      return MakeQ4(schema);
    case PaperQuery::kQ5:
      return MakeQ5(schema);
    case PaperQuery::kQ6:
      return MakeQ6(schema);
    case PaperQuery::kDS0:
    case PaperQuery::kDS1:
    case PaperQuery::kDS2:
      return MakeDs(schema, query);
  }
  CASM_CHECK(false);
  return MakeQ1(schema);
}

Workflow MakeWeblogWorkflow() {
  SchemaPtr schema = WeblogSchema();
  WorkflowBuilder b(schema);
  Granularity minute = Gran(schema, {{"Keyword", "word"}, {"Time", "minute"}});
  Granularity hour = Gran(schema, {{"Keyword", "word"}, {"Time", "hour"}});
  int m1 = b.AddBasic("M1", minute, AggregateFn::kMedian, "PageCount");
  int m2 = b.AddBasic("M2", hour, AggregateFn::kMedian, "AdCount");
  int m3 = b.AddExpression(
      "M3", minute, Expression::Source(0) / Expression::Source(1),
      {WorkflowBuilder::Self(m1), WorkflowBuilder::ParentChild(m2)});
  b.AddSourceAggregate("M4", minute, AggregateFn::kAvg,
                       {b.Sibling(m3, "Time", -9, 0)});
  return BuildOrDie(std::move(b));
}

}  // namespace casm
