// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "queries/paper_data.h"

#include "common/logging.h"

namespace casm {
namespace {

constexpr int64_t kDay = 86400;
constexpr int64_t kDays = 20;

Hierarchy IntegerAttribute(const std::string& name) {
  Result<Hierarchy> h = Hierarchy::Numeric(
      name, 256, {4, 16, 64}, {"value", "tier1", "tier2", "tier3"});
  CASM_CHECK(h.ok()) << h.status().ToString();
  return std::move(h).value();
}

Hierarchy TemporalAttribute(const std::string& name) {
  Result<Hierarchy> h =
      Hierarchy::Numeric(name, kDays * kDay, {60, 3600, kDay},
                         {"second", "minute", "hour", "day"});
  CASM_CHECK(h.ok()) << h.status().ToString();
  return std::move(h).value();
}

}  // namespace

SchemaPtr PaperSchema() {
  return MakeSchemaOrDie({IntegerAttribute("D1"), IntegerAttribute("D2"),
                          IntegerAttribute("D3"), IntegerAttribute("D4"),
                          TemporalAttribute("T1"), TemporalAttribute("T2")});
}

Table PaperUniformTable(int64_t rows, uint64_t seed) {
  return GenerateUniformTable(PaperSchema(), rows, seed);
}

Table PaperSkewedTable(int64_t rows, uint64_t seed) {
  SchemaPtr schema = PaperSchema();
  std::vector<AttributeDistribution> dists(6, AttributeDistribution::Uniform());
  dists[4] = AttributeDistribution::UniformRange(0, 5 * kDay - 1);
  dists[5] = AttributeDistribution::UniformRange(0, 5 * kDay - 1);
  Result<Table> table = GenerateTable(schema, rows, std::move(dists), seed);
  CASM_CHECK(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

SchemaPtr WeblogSchema() {
  constexpr int64_t kWords = 1000;
  std::vector<int64_t> word_to_group(kWords);
  for (int64_t w = 0; w < kWords; ++w) word_to_group[static_cast<size_t>(w)] = w / 20;
  Result<Hierarchy> keyword =
      Hierarchy::Nominal("Keyword", kWords, {word_to_group}, {"word", "group"});
  CASM_CHECK(keyword.ok()) << keyword.status().ToString();

  auto count_attr = [](const std::string& name) {
    Result<Hierarchy> h = Hierarchy::Numeric(name, 21, {7}, {"value", "level"});
    CASM_CHECK(h.ok()) << h.status().ToString();
    return std::move(h).value();
  };
  Result<Hierarchy> time = Hierarchy::Numeric(
      "Time", kDays * 1440, {60, 1440}, {"minute", "hour", "day"});
  CASM_CHECK(time.ok()) << time.status().ToString();

  return MakeSchemaOrDie({std::move(keyword).value(), count_attr("PageCount"),
                          count_attr("AdCount"), std::move(time).value()});
}

Table WeblogTable(int64_t rows, uint64_t seed) {
  SchemaPtr schema = WeblogSchema();
  std::vector<AttributeDistribution> dists = {
      AttributeDistribution::Zipf(1.1),  // keywords are heavy-tailed
      AttributeDistribution::Uniform(), AttributeDistribution::Uniform(),
      AttributeDistribution::Uniform()};
  Result<Table> table = GenerateTable(schema, rows, std::move(dists), seed);
  CASM_CHECK(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

}  // namespace casm
