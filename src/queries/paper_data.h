// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// The paper's evaluation datasets (§VI): a schema with four integer
// attributes drawn from [0, 255] under a four-level hierarchy and two
// temporal attributes (second/minute/hour/day) spanning a twenty-day
// period; uniform and temporally skewed variants (skew = all time values
// in the first five days). Plus the weblog-analysis schema of the paper's
// introduction (Table I).

#ifndef CASM_QUERIES_PAPER_DATA_H_
#define CASM_QUERIES_PAPER_DATA_H_

#include <cstdint>

#include "data/generator.h"
#include "data/table.h"

namespace casm {

/// §VI synthetic schema: D1..D4 integer in [0,255] with levels
/// value(1)/tier1(4)/tier2(16)/tier3(64)/ALL, T1..T2 temporal over 20 days
/// with levels second/minute/hour/day/ALL.
SchemaPtr PaperSchema();

/// Uniform records over PaperSchema().
Table PaperUniformTable(int64_t rows, uint64_t seed);

/// Temporally skewed records: both temporal attributes drawn uniformly
/// from the first five of the twenty days (§VI).
Table PaperSkewedTable(int64_t rows, uint64_t seed);

/// Intro example schema (Table I): Keyword (nominal word/group/ALL,
/// 1000 words in 50 groups), PageCount and AdCount in [0,20] with
/// value/level/ALL, Time over 20 days with minute/hour/day/ALL.
SchemaPtr WeblogSchema();

/// Search-session log over WeblogSchema(): Zipf keywords, uniform counts
/// and times.
Table WeblogTable(int64_t rows, uint64_t seed);

}  // namespace casm

#endif  // CASM_QUERIES_PAPER_DATA_H_
