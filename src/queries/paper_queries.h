// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// The evaluation workloads of paper §VI (queries Q1–Q6 and the early-
// aggregation queries DS0–DS2) plus the introduction's weblog analysis
// (measures M1–M4), expressed against the schemas of paper_data.h.

#ifndef CASM_QUERIES_PAPER_QUERIES_H_
#define CASM_QUERIES_PAPER_QUERIES_H_

#include <vector>

#include "measure/workflow.h"

namespace casm {

enum class PaperQuery {
  kQ1,   // three independent fine-granularity basic measures
  kQ2,   // parent aggregated from children
  kQ3,   // five measures; two child-aggregation chains joined at parents
  kQ4,   // combines same-region and child sources
  kQ5,   // sibling relation: hourly summary of the preceding hours
  kQ6,   // all four relations, topped by a sliding time window
  kDS0,  // early-aggregation query, very coarse basic grouping
  kDS1,  // early-aggregation query, intermediate grouping
  kDS2,  // early-aggregation query, fine grouping
};

const char* PaperQueryName(PaperQuery query);
std::vector<PaperQuery> AllPaperQueries();

/// Builds the query against PaperSchema() (paper_data.h).
Workflow MakePaperQuery(PaperQuery query);

/// Builds the query against a caller-supplied PaperSchema() instance.
/// Multi-query consumers (svc/query_service.h shared batching,
/// bench/fig_service.cc) need every workflow AND the table to share one
/// schema instance — shared-scan compatibility is pointer identity.
Workflow MakePaperQuery(PaperQuery query, const SchemaPtr& schema);

/// The intro's M1–M4 against WeblogSchema().
Workflow MakeWeblogWorkflow();

}  // namespace casm

#endif  // CASM_QUERIES_PAPER_QUERIES_H_
