// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "common/fault.h"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace casm {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
uint64_t MixBits(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool PhaseMatches(const std::string& want, const char* got) {
  return want.empty() || want == got;
}

bool IntMatches(int want, int got) { return want < 0 || want == got; }

std::string SiteSuffix(const char* phase, int task, int attempt) {
  std::ostringstream os;
  os << " (phase=" << phase << " task=" << task << " attempt=" << attempt
     << ")";
  return os.str();
}

}  // namespace

FaultPlan::FaultPlan(uint64_t seed)
    : seed_(seed), counters_(std::make_shared<Counters>()) {}

FaultPlan& FaultPlan::Add(TaskCrash spec) {
  crashes_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::Add(TaskSlowdown spec) {
  slowdowns_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::Add(RecordThrottle spec) {
  throttles_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::Add(IoError spec) {
  io_error_nth_slots_.push_back(spec.every_nth > 0 ? NewNthSlot() : -1);
  io_errors_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::Add(BlockCorruption spec) {
  corruption_nth_slots_.push_back(spec.every_nth > 0 ? NewNthSlot() : -1);
  corruptions_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::Add(NodeOutage spec) {
  outages_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::AddCrashHook(TaskStatusHook hook) {
  CASM_CHECK(hook != nullptr);
  crash_hooks_.push_back(std::move(hook));
  return *this;
}

FaultPlan& FaultPlan::AddSlowdownHook(TaskDelayHook hook) {
  CASM_CHECK(hook != nullptr);
  slowdown_hooks_.push_back(std::move(hook));
  return *this;
}

FaultPlan& FaultPlan::AddThrottleHook(TaskDelayHook hook) {
  CASM_CHECK(hook != nullptr);
  throttle_hooks_.push_back(std::move(hook));
  return *this;
}

int FaultPlan::NewNthSlot() {
  counters_->nth.push_back(std::make_unique<std::atomic<int64_t>>(0));
  return static_cast<int>(counters_->nth.size()) - 1;
}

double FaultPlan::UnitHash(uint64_t tag, std::string_view s, int64_t a,
                           int64_t b, int64_t c) const {
  uint64_t h = MixBits(seed_ ^ tag);
  for (char ch : s) {
    h = MixBits(h ^ static_cast<uint64_t>(static_cast<unsigned char>(ch)));
  }
  h = MixBits(h ^ static_cast<uint64_t>(a));
  h = MixBits(h ^ static_cast<uint64_t>(b));
  h = MixBits(h ^ static_cast<uint64_t>(c));
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status FaultPlan::OnTaskAttempt(const char* phase, int task,
                                int attempt) const {
  // Every hook runs on every attempt (legacy injectors count invocations);
  // the first failure wins but does not short-circuit later hooks.
  Status failed = Status::OK();
  for (const TaskStatusHook& hook : crash_hooks_) {
    Status s = hook(phase, task, attempt);
    if (!s.ok() && failed.ok()) failed = std::move(s);
  }
  if (!failed.ok()) {
    counters_->faults_injected.fetch_add(1, std::memory_order_relaxed);
    return failed;
  }
  for (size_t i = 0; i < crashes_.size(); ++i) {
    const TaskCrash& c = crashes_[i];
    if (!PhaseMatches(c.phase, phase) || !IntMatches(c.task, task) ||
        !IntMatches(c.attempt, attempt)) {
      continue;
    }
    if (c.probability < 1.0 &&
        UnitHash(/*tag=*/0x0c1a54ull + i, phase, task, attempt, 0) >=
            c.probability) {
      continue;
    }
    counters_->faults_injected.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(c.message + SiteSuffix(phase, task, attempt));
  }
  if (parent_ != nullptr) return parent_->OnTaskAttempt(phase, task, attempt);
  return Status::OK();
}

double FaultPlan::TaskSlowdownSeconds(const char* phase, int task,
                                      int attempt) const {
  double total = 0;
  for (const TaskDelayHook& hook : slowdown_hooks_) {
    total += hook(phase, task, attempt);
  }
  for (const TaskSlowdown& s : slowdowns_) {
    if (PhaseMatches(s.phase, phase) && IntMatches(s.task, task) &&
        IntMatches(s.attempt, attempt)) {
      total += s.seconds;
    }
  }
  if (parent_ != nullptr) {
    total += parent_->TaskSlowdownSeconds(phase, task, attempt);
  }
  return total;
}

double FaultPlan::RecordThrottleSeconds(const char* phase, int task,
                                        int attempt) const {
  double total = 0;
  for (const TaskDelayHook& hook : throttle_hooks_) {
    total += hook(phase, task, attempt);
  }
  for (const RecordThrottle& t : throttles_) {
    if (PhaseMatches(t.phase, phase) && IntMatches(t.task, task) &&
        IntMatches(t.attempt, attempt)) {
      total += t.seconds_per_record;
    }
  }
  if (parent_ != nullptr) {
    total += parent_->RecordThrottleSeconds(phase, task, attempt);
  }
  return total;
}

Status FaultPlan::OnIo(const char* op, int node) const {
  const int64_t seq =
      counters_->io_ops.fetch_add(1, std::memory_order_relaxed);
  if (NodeDownAt(node, seq)) {
    counters_->faults_injected.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("injected outage: node " + std::to_string(node) +
                            " is down");
  }
  for (size_t i = 0; i < io_errors_.size(); ++i) {
    const IoError& e = io_errors_[i];
    if (!(e.op.empty() || e.op == op) || !IntMatches(e.node, node)) continue;
    bool fire = false;
    if (e.every_nth > 0) {
      const int64_t n =
          counters_->nth[io_error_nth_slots_[i]]->fetch_add(
              1, std::memory_order_relaxed) +
          1;
      fire = (n % e.every_nth) == 0;
    }
    if (!fire && e.probability > 0) {
      fire = UnitHash(/*tag=*/0x10e44ull + i, op, node, seq, 0) <
             e.probability;
    }
    if (fire) {
      counters_->faults_injected.fetch_add(1, std::memory_order_relaxed);
      return Status::Internal(e.message + " (op=" + op +
                              " node=" + std::to_string(node) + ")");
    }
  }
  if (parent_ != nullptr) return parent_->OnIo(op, node);
  return Status::OK();
}

bool FaultPlan::NodeDown(int node) const {
  if (NodeDownAt(node, counters_->io_ops.load(std::memory_order_relaxed))) {
    return true;
  }
  return parent_ != nullptr && parent_->NodeDown(node);
}

bool FaultPlan::NodeDownAt(int node, int64_t io_op) const {
  for (const NodeOutage& o : outages_) {
    if (IntMatches(o.node, node) && io_op >= o.from_io_op &&
        io_op < o.to_io_op) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::ShouldCorruptBlock(std::string_view file, int block,
                                   int node) const {
  for (size_t i = 0; i < corruptions_.size(); ++i) {
    const BlockCorruption& c = corruptions_[i];
    bool fire = false;
    if (c.every_nth > 0) {
      const int64_t n =
          counters_->nth[corruption_nth_slots_[i]]->fetch_add(
              1, std::memory_order_relaxed) +
          1;
      fire = (n % c.every_nth) == 0;
    }
    if (!fire && c.probability > 0) {
      fire = UnitHash(/*tag=*/0xc0445ull + i, file, block, node, 0) <
             c.probability;
    }
    if (fire) {
      counters_->faults_injected.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return parent_ != nullptr && parent_->ShouldCorruptBlock(file, block, node);
}

bool FaultPlan::armed() const {
  const bool own = !crashes_.empty() || !slowdowns_.empty() ||
                   !throttles_.empty() || !io_errors_.empty() ||
                   !corruptions_.empty() || !outages_.empty() ||
                   !crash_hooks_.empty() || !slowdown_hooks_.empty() ||
                   !throttle_hooks_.empty();
  return own || (parent_ != nullptr && parent_->armed());
}

int64_t FaultPlan::faults_injected() const {
  return counters_->faults_injected.load(std::memory_order_relaxed);
}

int64_t FaultPlan::io_ops() const {
  return counters_->io_ops.load(std::memory_order_relaxed);
}

// ---- Parsing --------------------------------------------------------------

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

Status ParseDouble(const std::string& clause, const std::string& token,
                   double* out) {
  try {
    size_t used = 0;
    *out = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
  } catch (const std::exception&) {
    return Status::InvalidArgument("fault plan: bad number '" + token +
                                   "' in clause '" + clause + "'");
  }
  return Status::OK();
}

Status ParseInt(const std::string& clause, const std::string& token,
                int64_t* out) {
  try {
    size_t used = 0;
    *out = std::stoll(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
  } catch (const std::exception&) {
    return Status::InvalidArgument("fault plan: bad integer '" + token +
                                   "' in clause '" + clause + "'");
  }
  return Status::OK();
}

/// Parses "map" | "reduce" | "*" into a spec phase filter.
Status ParsePhase(const std::string& clause, const std::string& token,
                  std::string* out) {
  if (token == "*") {
    out->clear();
    return Status::OK();
  }
  if (token == "map" || token == "reduce") {
    *out = token;
    return Status::OK();
  }
  return Status::InvalidArgument("fault plan: bad phase '" + token +
                                 "' in clause '" + clause +
                                 "' (want map|reduce|*)");
}

/// Parses an integer field that admits "*" for "any" (-1).
Status ParseAnyInt(const std::string& clause, const std::string& token,
                   int* out) {
  if (token == "*") {
    *out = -1;
    return Status::OK();
  }
  int64_t v = 0;
  CASM_RETURN_IF_ERROR(ParseInt(clause, token, &v));
  *out = static_cast<int>(v);
  return Status::OK();
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  uint64_t seed = 0;
  bool seed_set = false;
  std::vector<std::string> clauses = SplitOn(text, ';');
  for (const std::string& raw : clauses) {
    const std::string clause = Trim(raw);
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan: clause '" + clause +
                                     "' is not key=value");
    }
    const std::string key = Trim(clause.substr(0, eq));
    std::vector<std::string> args = SplitOn(Trim(clause.substr(eq + 1)), ':');
    for (std::string& a : args) a = Trim(a);

    if (key == "seed") {
      int64_t v = 0;
      if (args.size() != 1) {
        return Status::InvalidArgument("fault plan: seed wants one value");
      }
      CASM_RETURN_IF_ERROR(ParseInt(clause, args[0], &v));
      seed = static_cast<uint64_t>(v);
      seed_set = true;
    } else if (key == "node_down") {
      if (args.size() != 1 && args.size() != 3) {
        return Status::InvalidArgument(
            "fault plan: node_down wants NODE or NODE:FROM:TO in '" + clause +
            "'");
      }
      NodeOutage o;
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[0], &o.node));
      if (args.size() == 3) {
        CASM_RETURN_IF_ERROR(ParseInt(clause, args[1], &o.from_io_op));
        CASM_RETURN_IF_ERROR(ParseInt(clause, args[2], &o.to_io_op));
      }
      plan.Add(o);
    } else if (key == "io_error" || key == "io_error_nth") {
      if (args.empty() || args.size() > 3) {
        return Status::InvalidArgument("fault plan: " + key +
                                       " wants VALUE[:OP[:NODE]] in '" +
                                       clause + "'");
      }
      IoError e;
      if (key == "io_error") {
        CASM_RETURN_IF_ERROR(ParseDouble(clause, args[0], &e.probability));
      } else {
        CASM_RETURN_IF_ERROR(ParseInt(clause, args[0], &e.every_nth));
        if (e.every_nth <= 0) {
          return Status::InvalidArgument(
              "fault plan: io_error_nth wants N >= 1 in '" + clause + "'");
        }
      }
      if (args.size() >= 2 && args[1] != "*") {
        if (args[1] != "read" && args[1] != "write") {
          return Status::InvalidArgument("fault plan: bad op '" + args[1] +
                                         "' in '" + clause +
                                         "' (want read|write|*)");
        }
        e.op = args[1];
      }
      if (args.size() == 3) {
        CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[2], &e.node));
      }
      plan.Add(std::move(e));
    } else if (key == "block_corrupt" || key == "block_corrupt_nth") {
      if (args.size() != 1) {
        return Status::InvalidArgument("fault plan: " + key +
                                       " wants one value");
      }
      BlockCorruption c;
      if (key == "block_corrupt") {
        CASM_RETURN_IF_ERROR(ParseDouble(clause, args[0], &c.probability));
      } else {
        CASM_RETURN_IF_ERROR(ParseInt(clause, args[0], &c.every_nth));
        if (c.every_nth <= 0) {
          return Status::InvalidArgument(
              "fault plan: block_corrupt_nth wants N >= 1 in '" + clause +
              "'");
        }
      }
      plan.Add(c);
    } else if (key == "task_crash") {
      if (args.size() != 3 && args.size() != 4) {
        return Status::InvalidArgument(
            "fault plan: task_crash wants PHASE:TASK:ATTEMPT[:P] in '" +
            clause + "'");
      }
      TaskCrash c;
      CASM_RETURN_IF_ERROR(ParsePhase(clause, args[0], &c.phase));
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[1], &c.task));
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[2], &c.attempt));
      if (args.size() == 4) {
        CASM_RETURN_IF_ERROR(ParseDouble(clause, args[3], &c.probability));
      }
      plan.Add(std::move(c));
    } else if (key == "slow_task") {
      if (args.size() != 4) {
        return Status::InvalidArgument(
            "fault plan: slow_task wants PHASE:TASK:ATTEMPT:SECONDS in '" +
            clause + "'");
      }
      TaskSlowdown s;
      CASM_RETURN_IF_ERROR(ParsePhase(clause, args[0], &s.phase));
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[1], &s.task));
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[2], &s.attempt));
      CASM_RETURN_IF_ERROR(ParseDouble(clause, args[3], &s.seconds));
      plan.Add(std::move(s));
    } else if (key == "throttle") {
      if (args.size() != 4) {
        return Status::InvalidArgument(
            "fault plan: throttle wants PHASE:TASK:ATTEMPT:SECONDS in '" +
            clause + "'");
      }
      RecordThrottle t;
      CASM_RETURN_IF_ERROR(ParsePhase(clause, args[0], &t.phase));
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[1], &t.task));
      CASM_RETURN_IF_ERROR(ParseAnyInt(clause, args[2], &t.attempt));
      CASM_RETURN_IF_ERROR(
          ParseDouble(clause, args[3], &t.seconds_per_record));
      plan.Add(std::move(t));
    } else {
      return Status::InvalidArgument("fault plan: unknown clause key '" +
                                     key + "'");
    }
  }
  if (seed_set) plan.seed_ = seed;
  return plan;
}

const FaultPlan* FaultPlan::FromEnv() {
  static const FaultPlan* plan = []() -> const FaultPlan* {
    const char* env = std::getenv("CASM_FAULT_PLAN");
    if (env == nullptr || *env == '\0') return nullptr;
    Result<FaultPlan> parsed = Parse(env);
    CASM_CHECK(parsed.ok()) << "CASM_FAULT_PLAN: "
                            << parsed.status().ToString();
    return new FaultPlan(std::move(parsed).value());
  }();
  return plan;
}

}  // namespace casm
