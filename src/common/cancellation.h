// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Cooperative cancellation for long-running parallel work. A
// CancellationToken is a one-shot latch that work can poll cheaply
// (`cancelled()` is one relaxed atomic load on the fast path); once
// tripped it stays tripped and `status()` reports why — an explicit
// Cancel() or an expired deadline.
//
// Tokens form chains: a token constructed with a parent observes the
// parent's cancellation too, so a job-level token (deadline, caller
// abort) cancels every per-attempt token derived from it while one
// attempt can still be cancelled individually (e.g. the loser of a
// speculative-execution race) without touching its siblings.
//
// Cancellation is cooperative by design: nothing is interrupted
// preemptively. Loops doing unbounded work must poll a token every few
// thousand records and return early with `status()`; the MapReduce
// engine, the parallel evaluator's map/reduce functions, and the
// sort/scan evaluator's scans all do.

#ifndef CASM_COMMON_CANCELLATION_H_
#define CASM_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace casm {

/// One-shot cancellation latch with an optional deadline and an optional
/// parent. Thread-safe; not copyable or movable (share by pointer).
class CancellationToken {
 public:
  CancellationToken() = default;
  /// A child token: also cancelled whenever `parent` is. `parent` may be
  /// null and must outlive this token otherwise.
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token (idempotent; a deadline trip is not overwritten).
  void Cancel() const { TripIfLive(kByCancel); }

  /// Arms a wall-clock deadline; any later `cancelled()` poll past the
  /// deadline trips the token with DeadlineExceeded. Must be called
  /// before the token is shared with other threads.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// True once this token (or an ancestor) is cancelled or past its
  /// deadline. Polling is what enforces deadlines — cheap enough for
  /// every few thousand records of a scan.
  bool cancelled() const {
    if (state_.load(std::memory_order_acquire) != kLive) return true;
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      TripIfLive(kByDeadline);
      return true;
    }
    return parent_ != nullptr && parent_->cancelled();
  }

  /// OK while live; Cancelled or DeadlineExceeded once tripped (the
  /// reason of the nearest tripped token in the chain).
  Status status() const {
    if (!cancelled()) return Status::OK();
    const int state = state_.load(std::memory_order_acquire);
    if (state == kLive && parent_ != nullptr) return parent_->status();
    return state == kByDeadline
               ? Status::DeadlineExceeded("deadline exceeded")
               : Status::Cancelled("cancelled");
  }

 private:
  static constexpr int kLive = 0;
  static constexpr int kByCancel = 1;
  static constexpr int kByDeadline = 2;

  void TripIfLive(int reason) const {
    int expected = kLive;
    state_.compare_exchange_strong(expected, reason,
                                   std::memory_order_acq_rel);
  }

  mutable std::atomic<int> state_{kLive};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancellationToken* parent_ = nullptr;
};

/// Sleeps for `seconds`, polling `token` (may be null) every fraction of
/// a millisecond so injected latency stays cancellable. Returns true if
/// the full duration elapsed, false if the token tripped first.
bool InterruptibleSleep(double seconds, const CancellationToken* token);

}  // namespace casm

#endif  // CASM_COMMON_CANCELLATION_H_
