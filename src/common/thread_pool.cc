// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace casm {

ThreadPool::ThreadPool(int num_threads) {
  CASM_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CASM_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk so that each worker receives a handful of tasks; a shared atomic
  // cursor inside each chunked task balances uneven per-item cost.
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(n, threads_.size() * 4);
  for (size_t t = 0; t < tasks; ++t) {
    Submit([cursor, n, &fn] {
      for (size_t i = cursor->fetch_add(1); i < n; i = cursor->fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace casm
