// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"

namespace casm {

ThreadPool::ThreadPool(int num_threads) {
  CASM_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CASM_CHECK(!shutdown_);
    queue_.push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::set_queue_latency_hook(std::function<void(double)> hook) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_latency_hook_ =
      hook ? std::make_shared<const std::function<void(double)>>(
                 std::move(hook))
           : nullptr;
}

void ThreadPool::RecordError(Status status) {
  std::unique_lock<std::mutex> lock(mu_);
  if (first_error_.ok()) first_error_ = std::move(status);
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  Status error = std::move(first_error_);
  first_error_ = Status::OK();
  return error;
}

Status ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  return ParallelFor(n, fn, nullptr);
}

Status ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                               const CancellationToken* cancel) {
  if (n == 0) return Status::OK();
  // Chunk so that each worker receives a handful of tasks; a shared atomic
  // cursor inside each chunked task balances uneven per-item cost. On the
  // first failure (or cancellation) the cursor is pushed past n so the
  // remaining indices are abandoned (fail-fast) without tearing down the
  // pool.
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(n, threads_.size() * 4);
  for (size_t t = 0; t < tasks; ++t) {
    Submit([this, cursor, n, cancel, &fn] {
      for (size_t i = cursor->fetch_add(1); i < n; i = cursor->fetch_add(1)) {
        if (cancel != nullptr && cancel->cancelled()) {
          cursor->store(n);
          return;
        }
        try {
          fn(i);
        } catch (const std::exception& e) {
          RecordError(Status::Internal("ParallelFor item " + std::to_string(i) +
                                       " threw: " + e.what()));
          cursor->store(n);
          return;
        } catch (...) {
          RecordError(Status::Internal("ParallelFor item " + std::to_string(i) +
                                       " threw a non-std exception"));
          cursor->store(n);
          return;
        }
      }
    });
  }
  Status error = Wait();
  if (error.ok() && cancel != nullptr && cancel->cancelled()) {
    return cancel->status();
  }
  return error;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<const std::function<void(double)>> hook;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue
      task = std::move(queue_.front().fn);
      enqueued = queue_.front().enqueued;
      queue_.pop_front();
      hook = queue_latency_hook_;
    }
    if (hook != nullptr) {
      (*hook)(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            enqueued)
                  .count());
    }
    // A throwing task must not escape the worker thread (std::terminate);
    // capture the failure for the next Wait() instead.
    try {
      task();
    } catch (const std::exception& e) {
      RecordError(
          Status::Internal(std::string("submitted task threw: ") + e.what()));
    } catch (...) {
      RecordError(Status::Internal("submitted task threw a non-std exception"));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace casm
