// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "common/memory_budget.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace casm {

bool MemoryBudget::TryReserve(int64_t bytes) {
  if (bytes <= 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  if (capacity_ > 0 && used_ + bytes > capacity_) return false;
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return true;
}

Status MemoryBudget::Reserve(int64_t bytes, const CancellationToken* cancel) {
  if (bytes <= 0) return Status::OK();
  if (capacity_ > 0 && bytes > capacity_) {
    return Status::InvalidArgument(
        "memory reservation of " + std::to_string(bytes) +
        " bytes exceeds the whole budget of " + std::to_string(capacity_) +
        " bytes; raise memory_budget_bytes or shrink the task");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (capacity_ > 0 && used_ + bytes > capacity_) {
    ++admission_waits_;
    const auto wait_start = std::chrono::steady_clock::now();
    while (used_ + bytes > capacity_) {
      if (cancel != nullptr && cancel->cancelled()) {
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wait_start)
                .count();
        admission_wait_seconds_ += waited;
        if (wait_observer_) {
          lock.unlock();
          wait_observer_(waited);
        }
        return cancel->status();
      }
      // A short timed wait doubles as the cancellation/deadline poll: a
      // tripped token is observed within a few milliseconds even when no
      // Release() ever arrives.
      released_.wait_for(lock, std::chrono::milliseconds(2));
    }
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wait_start)
            .count();
    admission_wait_seconds_ += waited;
    used_ += bytes;
    peak_used_ = std::max(peak_used_, used_);
    if (wait_observer_) {
      lock.unlock();
      wait_observer_(waited);
    }
    return Status::OK();
  }
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return Status::OK();
}

void MemoryBudget::Release(int64_t bytes) {
  if (bytes <= 0) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    used_ = std::max<int64_t>(0, used_ - bytes);
  }
  released_.notify_all();
}

int64_t MemoryBudget::used() const {
  std::unique_lock<std::mutex> lock(mu_);
  return used_;
}

int64_t MemoryBudget::peak_used() const {
  std::unique_lock<std::mutex> lock(mu_);
  return peak_used_;
}

int64_t MemoryBudget::admission_waits() const {
  std::unique_lock<std::mutex> lock(mu_);
  return admission_waits_;
}

double MemoryBudget::admission_wait_seconds() const {
  std::unique_lock<std::mutex> lock(mu_);
  return admission_wait_seconds_;
}

}  // namespace casm
