// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Minimal assertion/logging macros. CASM_CHECK aborts on violated internal
// invariants; it is always on (the library's correctness arguments rely on
// these invariants, and the cost is negligible off the hot paths where the
// macro is used).

#ifndef CASM_COMMON_LOGGING_H_
#define CASM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace casm::internal {

/// Accumulates a failure message and aborts when destroyed.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CASM_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets a streamed CheckFailureStream expression be used in a void context
/// (`operator&` binds looser than `operator<<`).
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace casm::internal

#define CASM_CHECK(condition)                                   \
  (condition) ? (void)0                                         \
              : ::casm::internal::Voidify() &                   \
                    ::casm::internal::CheckFailureStream(       \
                        #condition, __FILE__, __LINE__)

#define CASM_CHECK_EQ(a, b) CASM_CHECK((a) == (b))
#define CASM_CHECK_NE(a, b) CASM_CHECK((a) != (b))
#define CASM_CHECK_LT(a, b) CASM_CHECK((a) < (b))
#define CASM_CHECK_LE(a, b) CASM_CHECK((a) <= (b))
#define CASM_CHECK_GT(a, b) CASM_CHECK((a) > (b))
#define CASM_CHECK_GE(a, b) CASM_CHECK((a) >= (b))

#endif  // CASM_COMMON_LOGGING_H_
