// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Minimal assertion/logging macros. CASM_CHECK aborts on violated internal
// invariants; it is always on (the library's correctness arguments rely on
// these invariants, and the cost is negligible off the hot paths where the
// macro is used).
//
// CASM_LOG(severity) is leveled diagnostic logging to stderr:
//
//   CASM_LOG(WARN) << "checkpoint store degraded: " << status.message();
//
// Severities are INFO < WARN < ERROR. The threshold comes from the
// CASM_LOG_LEVEL environment variable ("info", "warn", "error", "off";
// default "warn" so operational warnings stay visible without opting in)
// and is cached in an atomic — a suppressed statement costs one relaxed
// load and never evaluates its stream operands.

#ifndef CASM_COMMON_LOGGING_H_
#define CASM_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace casm {

enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2, kOff = 3 };

namespace internal {

/// The cached CASM_LOG_LEVEL threshold (parsed once; a benign parse race
/// stores the same value twice). Relaxed loads afterwards.
inline LogLevel LogThreshold() {
  static std::atomic<int> cached{-1};
  const int hit = cached.load(std::memory_order_relaxed);
  if (hit >= 0) return static_cast<LogLevel>(hit);
  LogLevel parsed = LogLevel::kWarn;
  if (const char* env = std::getenv("CASM_LOG_LEVEL")) {
    const std::string value(env);
    if (value == "info" || value == "INFO") parsed = LogLevel::kInfo;
    else if (value == "warn" || value == "WARN") parsed = LogLevel::kWarn;
    else if (value == "error" || value == "ERROR") parsed = LogLevel::kError;
    else if (value == "off" || value == "OFF") parsed = LogLevel::kOff;
  }
  cached.store(static_cast<int>(parsed), std::memory_order_relaxed);
  return parsed;
}

/// True when `level` should be emitted; one relaxed load on the hot path.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(LogThreshold());
}

/// Accumulates one log line and emits it to stderr when destroyed. The
/// single terminating write keeps concurrent log lines unsheared.
class LogMessageStream {
 public:
  LogMessageStream(LogLevel level, const char* file, int line) {
    const char* tag = level == LogLevel::kInfo
                          ? "I"
                          : (level == LogLevel::kWarn ? "W" : "E");
    stream_ << "casm " << tag << " " << file << ":" << line << "] ";
  }
  ~LogMessageStream() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
  }
  template <typename T>
  LogMessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace casm

namespace casm::internal {

/// Accumulates a failure message and aborts when destroyed.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CASM_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets a streamed CheckFailureStream / LogMessageStream expression be
/// used in a void context (`operator&` binds looser than `operator<<`).
struct Voidify {
  void operator&(const CheckFailureStream&) {}
  void operator&(const LogMessageStream&) {}
};

}  // namespace casm::internal

#define CASM_CHECK(condition)                                   \
  (condition) ? (void)0                                         \
              : ::casm::internal::Voidify() &                   \
                    ::casm::internal::CheckFailureStream(       \
                        #condition, __FILE__, __LINE__)

/// CASM_LOG(INFO) << ...; the stream operands are not evaluated when the
/// severity is below the CASM_LOG_LEVEL threshold.
#define CASM_LOG(severity) CASM_LOG_IMPL_##severity

#define CASM_LOG_AT(level)                                      \
  !::casm::internal::LogEnabled(level)                          \
      ? (void)0                                                 \
      : ::casm::internal::Voidify() &                           \
            ::casm::internal::LogMessageStream(level, __FILE__, __LINE__)

#define CASM_LOG_IMPL_INFO CASM_LOG_AT(::casm::LogLevel::kInfo)
#define CASM_LOG_IMPL_WARN CASM_LOG_AT(::casm::LogLevel::kWarn)
#define CASM_LOG_IMPL_ERROR CASM_LOG_AT(::casm::LogLevel::kError)

#define CASM_CHECK_EQ(a, b) CASM_CHECK((a) == (b))
#define CASM_CHECK_NE(a, b) CASM_CHECK((a) != (b))
#define CASM_CHECK_LT(a, b) CASM_CHECK((a) < (b))
#define CASM_CHECK_LE(a, b) CASM_CHECK((a) <= (b))
#define CASM_CHECK_GT(a, b) CASM_CHECK((a) > (b))
#define CASM_CHECK_GE(a, b) CASM_CHECK((a) >= (b))

#endif  // CASM_COMMON_LOGGING_H_
