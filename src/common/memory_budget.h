// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Process-wide memory accounting and admission control. A MemoryBudget is
// a thread-safe byte counter with an optional capacity: work reserves its
// projected footprint before allocating and releases it when the memory
// is returned. When a capacity is set, Reserve() blocks on a wait queue
// until enough earlier reservations are released — this is what paces
// concurrent MapReduce task launches (speculation doubles them) so the
// engine never runs a task whose working set it cannot hold, the Hadoop
// discipline of paper §III-A. With no capacity the budget never blocks
// and degrades to pure accounting (used / peak tracking), which is how
// the unbounded baseline of bench/fig_memory.cc measures its peak.
//
// Deadlock discipline: a single reservation larger than the whole
// capacity can never be satisfied, so Reserve() fails it immediately with
// a descriptive Status instead of parking the caller forever. Blocking
// waits poll a CancellationToken, so a job deadline or an external cancel
// also unblocks waiters promptly.

#ifndef CASM_COMMON_MEMORY_BUDGET_H_
#define CASM_COMMON_MEMORY_BUDGET_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/cancellation.h"
#include "common/status.h"

namespace casm {

/// Thread-safe byte budget with blocking admission. Share by pointer; not
/// copyable or movable.
class MemoryBudget {
 public:
  /// `capacity_bytes` <= 0 means unlimited (accounting only, never blocks).
  explicit MemoryBudget(int64_t capacity_bytes)
      : capacity_(capacity_bytes > 0 ? capacity_bytes : 0) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` if they fit (always fits when unlimited). Never
  /// blocks. Returns false when the reservation would exceed capacity.
  bool TryReserve(int64_t bytes);

  /// Reserves `bytes`, blocking until enough outstanding reservations are
  /// released. Fails immediately with a descriptive InvalidArgument when
  /// `bytes` exceeds the whole capacity (waiting could never succeed),
  /// and with `cancel`'s status when the token trips while waiting.
  Status Reserve(int64_t bytes, const CancellationToken* cancel);

  /// Returns `bytes` to the budget and wakes admission waiters.
  void Release(int64_t bytes);

  /// Configured capacity (0 = unlimited).
  int64_t capacity() const { return capacity_; }
  /// Bytes currently reserved.
  int64_t used() const;
  /// High-water mark of `used()` since construction.
  int64_t peak_used() const;
  /// Number of Reserve() calls that had to wait for admission.
  int64_t admission_waits() const;
  /// Total seconds Reserve() callers spent waiting for admission.
  double admission_wait_seconds() const;

  /// Installs a callback invoked (outside the budget lock) after every
  /// Reserve() that had to wait, with the seconds it waited. This is how
  /// the engine bridges admission activity into the live metrics
  /// registry without common/ depending on obs/. Install before sharing
  /// the budget across threads; the callback must not re-enter the
  /// budget.
  void set_wait_observer(std::function<void(double wait_seconds)> observer) {
    wait_observer_ = std::move(observer);
  }

 private:
  const int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable released_;
  int64_t used_ = 0;
  int64_t peak_used_ = 0;
  int64_t admission_waits_ = 0;
  double admission_wait_seconds_ = 0;
  std::function<void(double)> wait_observer_;
};

}  // namespace casm

#endif  // CASM_COMMON_MEMORY_BUDGET_H_
