// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// CRC-32 (the IEEE 802.3 polynomial, as used by zlib and HDFS block
// checksums) over byte buffers. The DFS volume stamps every stored block
// and every manifest with one so torn or bit-rotted writes are detected
// on read instead of silently corrupting restored results.

#ifndef CASM_COMMON_CRC32_H_
#define CASM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace casm {

/// CRC-32 of `size` bytes at `data`, continuing from `seed` (pass the
/// previous call's return value to checksum a buffer in pieces; the
/// default seed starts a fresh checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace casm

#endif  // CASM_COMMON_CRC32_H_
