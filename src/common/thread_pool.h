// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Fixed-size worker pool used by the MapReduce engine to execute map and
// reduce tasks. Tasks are closures; Wait() provides a full barrier.
//
// Fault model: an exception escaping a submitted task is captured by the
// worker (never std::terminate) and surfaced as a Status from the next
// Wait()/ParallelFor(); the pool stays usable afterwards. Retry policy
// lives above the pool (mr/engine.h) — the pool only guarantees that a
// failing task cannot take the process down.

#ifndef CASM_COMMON_THREAD_POOL_H_
#define CASM_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace casm {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// Thread-safe: Submit() and Wait() may be called from any thread, but
/// tasks must not themselves call Wait() (deadlock).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. An exception thrown by
  /// `task` is captured (first one wins) and returned by the next Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Returns the first
  /// error captured from a task since the previous Wait() (and clears it),
  /// so the pool can be reused after a failure.
  Status Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// `fn` must be safe to invoke concurrently for distinct i. If an
  /// invocation throws, remaining indices are abandoned (fail-fast) and the
  /// first failure is returned; indices already dispatched still complete.
  Status ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// As above, but also polls `cancel` (may be null) before every index:
  /// once the token trips, undispatched indices are abandoned and the
  /// token's status (Cancelled / DeadlineExceeded) is returned — unless a
  /// task failure happened first, which takes precedence. Cancellation is
  /// cooperative: indices already running are not interrupted.
  Status ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                     const CancellationToken* cancel);

  /// Installs an instrumentation hook invoked on the worker immediately
  /// before each submitted task runs, with the seconds the task spent
  /// queued (queue-to-start latency). Pass an empty function to
  /// uninstall. The hook must be thread-safe (workers invoke it
  /// concurrently) and must not call back into this pool. This keeps the
  /// pool free of any dependency on the tracing layer: the MapReduce
  /// engine installs a hook that records "pool" spans while a traced run
  /// is in flight.
  void set_queue_latency_hook(std::function<void(double)> hook);

 private:
  /// A queued task plus its enqueue time (for the queue-latency hook).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  void RecordError(Status status);  // first error wins; thread-safe

  std::vector<std::thread> threads_;
  std::deque<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + running
  bool shutdown_ = false;
  Status first_error_;  // first captured task failure since the last Wait()
  /// Shared so a worker can invoke the hook outside mu_ while
  /// set_queue_latency_hook swaps it concurrently.
  std::shared_ptr<const std::function<void(double)>> queue_latency_hook_;
};

}  // namespace casm

#endif  // CASM_COMMON_THREAD_POOL_H_
