// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Integer helpers used throughout region arithmetic. All region and offset
// math in CASM uses floor semantics (towards negative infinity) so that
// hierarchies behave uniformly for negative offsets.

#ifndef CASM_COMMON_MATH_H_
#define CASM_COMMON_MATH_H_

#include <cstdint>

#include "common/logging.h"

namespace casm {

/// Floor division: largest q with q * b <= a. Requires b > 0.
constexpr int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && r < 0) ? q - 1 : q;
}

/// Ceiling division: smallest q with q * b >= a. Requires b > 0.
constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && r > 0) ? q + 1 : q;
}

/// Floor modulo: a - FloorDiv(a, b) * b, always in [0, b). Requires b > 0.
constexpr int64_t FloorMod(int64_t a, int64_t b) {
  int64_t r = a % b;
  return r < 0 ? r + b : r;
}

static_assert(FloorDiv(7, 2) == 3);
static_assert(FloorDiv(-7, 2) == -4);
static_assert(CeilDiv(7, 2) == 4);
static_assert(CeilDiv(-7, 2) == -3);
static_assert(FloorMod(-7, 2) == 1);

}  // namespace casm

#endif  // CASM_COMMON_MATH_H_
