// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Integer helpers used throughout region arithmetic, plus a streaming
// quantile sketch shared by the engine's attempt statistics and the
// run-report histograms. All region and offset math in CASM uses floor
// semantics (towards negative infinity) so that hierarchies behave
// uniformly for negative offsets.

#ifndef CASM_COMMON_MATH_H_
#define CASM_COMMON_MATH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace casm {

/// Floor division: largest q with q * b <= a. Requires b > 0.
constexpr int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && r < 0) ? q - 1 : q;
}

/// Ceiling division: smallest q with q * b >= a. Requires b > 0.
constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && r > 0) ? q + 1 : q;
}

/// Floor modulo: a - FloorDiv(a, b) * b, always in [0, b). Requires b > 0.
constexpr int64_t FloorMod(int64_t a, int64_t b) {
  int64_t r = a % b;
  return r < 0 ? r + b : r;
}

static_assert(FloorDiv(7, 2) == 3);
static_assert(FloorDiv(-7, 2) == -4);
static_assert(CeilDiv(7, 2) == 4);
static_assert(CeilDiv(-7, 2) == -3);
static_assert(FloorMod(-7, 2) == 1);

/// Streaming quantile estimator: exact while at most `cap` values have
/// been added, an Algorithm-R reservoir past that. Deterministic (fixed
/// seed), copyable, and mergeable — Merge() lets per-job digests combine
/// into multi-run quantiles instead of the old max-over-jobs
/// approximation (MapReduceMetrics::Accumulate). Quantile(q) uses the
/// upper-median convention the engine always used for its attempt p50:
/// sorted[min(n-1, floor(q*n))], so sketches under `cap` reproduce the
/// previous sort-based values bit-for-bit.
///
/// Not thread-safe; callers serialize (the engine adds under its phase
/// lock, reports digest a snapshot).
class QuantileSketch {
 public:
  static constexpr size_t kDefaultCap = 4096;

  explicit QuantileSketch(size_t cap = kDefaultCap)
      : cap_(cap == 0 ? 1 : cap) {}

  /// Adds one observation.
  void Add(double value) {
    ++count_;
    max_ = count_ == 1 ? value : std::max(max_, value);
    min_ = count_ == 1 ? value : std::min(min_, value);
    sum_ += value;
    if (samples_.size() < cap_) {
      samples_.push_back(value);
      return;
    }
    // Reservoir step: keep each of the `count_` values seen so far with
    // equal probability cap_/count_.
    const uint64_t slot = rng_.Uniform(static_cast<uint64_t>(count_));
    if (slot < cap_) samples_[static_cast<size_t>(slot)] = value;
  }

  /// Folds `other`'s observations into this sketch. When the combined
  /// samples fit under the cap the merge stays exact; otherwise each
  /// side's samples are subsampled proportionally to the counts they
  /// represent.
  void Merge(const QuantileSketch& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
    sum_ += other.sum_;
    const int64_t total = count_ + other.count_;
    if (samples_.size() + other.samples_.size() <= cap_) {
      samples_.insert(samples_.end(), other.samples_.begin(),
                      other.samples_.end());
      count_ = total;
      return;
    }
    const size_t take_mine = std::min(
        samples_.size(),
        static_cast<size_t>(static_cast<double>(cap_) *
                            static_cast<double>(count_) /
                            static_cast<double>(total)));
    const size_t take_theirs = std::min(other.samples_.size(),
                                        cap_ - take_mine);
    SubsampleInPlace(&samples_, take_mine);
    std::vector<double> theirs = other.samples_;
    SubsampleInPlace(&theirs, take_theirs);
    samples_.insert(samples_.end(), theirs.begin(), theirs.end());
    count_ = total;
  }

  /// The q-quantile of the observations (0 when empty). q in [0, 1];
  /// Quantile(0.5) is the upper median, Quantile(1) the sampled max.
  double Quantile(double q) const {
    if (samples_.empty()) return 0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    const size_t index =
        std::min(sorted.size() - 1,
                 static_cast<size_t>(clamped *
                                     static_cast<double>(sorted.size())));
    return sorted[index];
  }

  int64_t count() const { return count_; }
  /// Exact extrema and sum over every observation (not just the sample).
  double Max() const { return count_ == 0 ? 0 : max_; }
  double Min() const { return count_ == 0 ? 0 : min_; }
  double Sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }

 private:
  /// Shrinks `v` to `keep` elements chosen uniformly (partial
  /// Fisher-Yates with the sketch's deterministic rng).
  void SubsampleInPlace(std::vector<double>* v, size_t keep) {
    if (v->size() <= keep) return;
    for (size_t i = 0; i < keep; ++i) {
      const size_t j =
          i + static_cast<size_t>(
                  rng_.Uniform(static_cast<uint64_t>(v->size() - i)));
      std::swap((*v)[i], (*v)[j]);
    }
    v->resize(keep);
  }

  size_t cap_;
  Rng rng_{0x9d5a1c6e4b3f2807ULL};  // fixed seed: deterministic sketches
  int64_t count_ = 0;
  double max_ = 0;
  double min_ = 0;
  double sum_ = 0;
  std::vector<double> samples_;
};

}  // namespace casm

#endif  // CASM_COMMON_MATH_H_
