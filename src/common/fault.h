// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Unified fault injection. A FaultPlan is a seeded, deterministic registry
// of fault specs spanning every fault domain the system exercises in tests
// and chaos harnesses:
//
//   * task crashes       — an attempt of a map/reduce task fails with a
//                          Status (matching phase/task/attempt, optionally
//                          probabilistic);
//   * task slowdowns     — an attempt sleeps before running (stragglers);
//   * record throttles   — per-record owed-time delays inside an attempt;
//   * IO errors          — a read/write against a storage node fails, by
//                          per-operation probability or on every Nth
//                          matching operation;
//   * block corruption   — a replica write silently stores flipped bits
//                          (detected later by CRC, never by the writer);
//   * node outages       — a storage node is down for a window of the
//                          plan's IO-operation clock (or forever).
//
// Call sites ask the plan at *fault points*: the MapReduce engine calls
// OnTaskAttempt / TaskSlowdownSeconds / RecordThrottleSeconds, the DFS
// volume calls OnIo / NodeDown / ShouldCorruptBlock. All decisions are
// pure functions of (seed, site coordinates, per-spec op counters), so a
// plan replayed over the same execution injects the same faults — chaos
// runs print their seed and are reproducible.
//
// Plans compose: set_parent() chains a local plan (e.g. the adapter the
// engine builds for the legacy MapReduceSpec injector hooks) in front of a
// shared one (e.g. the process-global plan parsed from CASM_FAULT_PLAN).
// Registration (Add*/set_*) is not thread-safe and must finish before the
// plan is shared; the query methods are thread-safe and lock-free.
//
// Environment activation: CASM_FAULT_PLAN holds a semicolon-separated spec
// string, e.g.
//
//   CASM_FAULT_PLAN='seed=7; node_down=2; io_error=0.01:read' ./bench/...
//
// See Parse() for the grammar. FromEnv() parses it once per process.

#ifndef CASM_COMMON_FAULT_H_
#define CASM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace casm {

/// A composable, seeded fault-injection plan. Movable but not copyable
/// (injection counters are shared state, not value state).
class FaultPlan {
 public:
  // ---- Fault specs ------------------------------------------------------
  // In every spec, `phase` is "map", "reduce", or "" (any); integer fields
  // use -1 for "any". Attempt numbers are the engine's 1-based injector
  // attempt numbers (speculative backups are max_task_attempts+1..2*max).

  /// A task attempt fails with an Internal Status.
  struct TaskCrash {
    std::string phase;
    int task = -1;
    int attempt = -1;
    double probability = 1.0;  // per matching attempt, seeded-deterministic
    std::string message = "injected task crash";
  };

  /// A task attempt sleeps `seconds` before doing any work.
  struct TaskSlowdown {
    std::string phase;
    int task = -1;
    int attempt = -1;
    double seconds = 0;
  };

  /// Every record processed by a matching attempt owes an extra delay.
  struct RecordThrottle {
    std::string phase;
    int task = -1;
    int attempt = -1;
    double seconds_per_record = 0;
  };

  /// A storage IO operation fails with an Internal Status. `op` is "read",
  /// "write", or "" (any). Fires on every Nth matching operation when
  /// `every_nth` > 0, and/or with per-operation `probability`.
  struct IoError {
    std::string op;
    int node = -1;
    double probability = 0;
    int64_t every_nth = 0;
    std::string message = "injected io error";
  };

  /// A replica write silently stores corrupted bytes. The writer reports
  /// success; only a CRC check on a later read/scrub sees the rot.
  struct BlockCorruption {
    double probability = 0;
    int64_t every_nth = 0;
  };

  /// A storage node is unreachable while the plan's IO-operation clock is
  /// in [from_io_op, to_io_op). Defaults describe a permanent outage.
  struct NodeOutage {
    int node = -1;  // -1 = every node
    int64_t from_io_op = 0;
    int64_t to_io_op = std::numeric_limits<int64_t>::max();
  };

  // ---- Legacy adapter hooks ---------------------------------------------
  // Thin bridges for the pre-existing MapReduceSpec injector fields. Hooks
  // run before the plan's own specs and before the parent, and — unlike
  // specs — *every* crash hook runs on every matching attempt even when an
  // earlier one already failed the attempt, preserving the legacy
  // exactly-once-per-attempt invocation contract the mr_fault tests assert.

  /// Returns non-OK to fail the attempt.
  using TaskStatusHook =
      std::function<Status(const char* phase, int task, int attempt)>;
  /// Returns seconds of delay (0 = none).
  using TaskDelayHook =
      std::function<double(const char* phase, int task, int attempt)>;

  explicit FaultPlan(uint64_t seed = 0);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;
  FaultPlan(FaultPlan&&) = default;
  FaultPlan& operator=(FaultPlan&&) = default;

  // ---- Registration (single-threaded, before sharing) -------------------

  FaultPlan& Add(TaskCrash spec);
  FaultPlan& Add(TaskSlowdown spec);
  FaultPlan& Add(RecordThrottle spec);
  FaultPlan& Add(IoError spec);
  FaultPlan& Add(BlockCorruption spec);
  FaultPlan& Add(NodeOutage spec);

  FaultPlan& AddCrashHook(TaskStatusHook hook);
  FaultPlan& AddSlowdownHook(TaskDelayHook hook);
  FaultPlan& AddThrottleHook(TaskDelayHook hook);

  /// Chains `parent` behind this plan: every query that this plan's own
  /// hooks and specs leave unanswered is forwarded to the parent. The
  /// parent must outlive this plan. nullptr detaches.
  void set_parent(const FaultPlan* parent) { parent_ = parent; }
  const FaultPlan* parent() const { return parent_; }

  uint64_t seed() const { return seed_; }

  // ---- Fault points (thread-safe queries) -------------------------------

  /// Engine fault point: consulted once per task attempt, before the
  /// attempt body runs. Non-OK fails the attempt (the engine's normal
  /// retry policy then applies). `phase` is "map" or "reduce".
  Status OnTaskAttempt(const char* phase, int task, int attempt) const;

  /// Total injected pre-attempt delay for this attempt (sum over matching
  /// hooks and specs, plus the parent's). 0 = run immediately.
  double TaskSlowdownSeconds(const char* phase, int task, int attempt) const;

  /// Injected per-record delay for this attempt. 0 = no throttle.
  double RecordThrottleSeconds(const char* phase, int task,
                               int attempt) const;

  /// Storage fault point: consulted once per replica IO operation. Each
  /// call advances the plan's IO-operation clock (which NodeOutage windows
  /// are defined over). `op` is "read" or "write"; `node` is the storage
  /// node ordinal. Non-OK fails the operation.
  Status OnIo(const char* op, int node) const;

  /// True when `node` is inside an outage window right now. Does not
  /// advance the IO-operation clock — placement/skip decisions peek, only
  /// actual operations tick.
  bool NodeDown(int node) const;

  /// True when the replica of `file`'s block `block` written to `node`
  /// should be silently corrupted.
  bool ShouldCorruptBlock(std::string_view file, int block, int node) const;

  /// True when the plan (or a parent) has any spec or hook registered —
  /// callers can skip fault-point calls entirely for unarmed plans.
  bool armed() const;

  /// Faults this plan has injected (crashes + IO errors + corrupted
  /// blocks; excludes the parent's own count).
  int64_t faults_injected() const;

  /// IO operations observed by this plan's clock.
  int64_t io_ops() const;

  // ---- Construction from text -------------------------------------------

  /// Parses a plan from a semicolon-separated spec string. Clauses
  /// (whitespace around tokens is ignored; `*` means "any"):
  ///
  ///   seed=N
  ///   node_down=NODE[:FROM:TO]        outage window on the IO-op clock
  ///   io_error=P[:OP[:NODE]]          per-op probability, OP=read|write|*
  ///   io_error_nth=N[:OP[:NODE]]      every Nth matching op fails
  ///   block_corrupt=P                 silent corruption probability
  ///   block_corrupt_nth=N             every Nth replica write corrupts
  ///   task_crash=PHASE:TASK:ATTEMPT[:P]
  ///   slow_task=PHASE:TASK:ATTEMPT:SECONDS
  ///   throttle=PHASE:TASK:ATTEMPT:SECONDS_PER_RECORD
  ///
  /// Example: "seed=7; node_down=2; io_error=0.05:read; task_crash=map:0:1"
  static Result<FaultPlan> Parse(const std::string& text);

  /// The process-global plan parsed from CASM_FAULT_PLAN, or nullptr when
  /// the variable is unset/empty. Parsed once; a malformed value aborts
  /// with the parse error (fail fast, not silently fault-free).
  static const FaultPlan* FromEnv();

 private:
  // Mutable injection state, shared so the plan stays movable and queries
  // stay const. `nth` holds one counter per registered Nth-trigger spec.
  struct Counters {
    std::atomic<int64_t> io_ops{0};
    std::atomic<int64_t> faults_injected{0};
    std::vector<std::unique_ptr<std::atomic<int64_t>>> nth;
  };

  /// Registers a fresh Nth-op counter and returns its slot index.
  int NewNthSlot();

  /// Deterministic [0,1) decision value for a fault site.
  double UnitHash(uint64_t tag, std::string_view s, int64_t a, int64_t b,
                  int64_t c) const;

  bool NodeDownAt(int node, int64_t io_op) const;

  uint64_t seed_ = 0;
  const FaultPlan* parent_ = nullptr;

  std::vector<TaskCrash> crashes_;
  std::vector<TaskSlowdown> slowdowns_;
  std::vector<RecordThrottle> throttles_;
  std::vector<IoError> io_errors_;
  std::vector<int> io_error_nth_slots_;  // parallel to io_errors_
  std::vector<BlockCorruption> corruptions_;
  std::vector<int> corruption_nth_slots_;  // parallel to corruptions_
  std::vector<NodeOutage> outages_;

  std::vector<TaskStatusHook> crash_hooks_;
  std::vector<TaskDelayHook> slowdown_hooks_;
  std::vector<TaskDelayHook> throttle_hooks_;

  std::shared_ptr<Counters> counters_;
};

}  // namespace casm

#endif  // CASM_COMMON_FAULT_H_
