// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "common/status.h"

namespace casm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace casm
