// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Error propagation for CASM. The library does not use exceptions; fallible
// operations return `Status` (or `Result<T>`, see common/result.h). The
// design follows the conventions of widely used database codebases
// (RocksDB's Status, absl::Status).

#ifndef CASM_COMMON_STATUS_H_
#define CASM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace casm {

/// Canonical error space. Keep the list short; codes are for dispatch,
/// messages are for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
};

/// Returns the canonical spelling of `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

/// Value type carrying either success (`ok()`) or an error code + message.
///
/// Example:
///   Status s = workflow.Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// True for the cooperative-cancellation outcomes (Cancelled,
/// DeadlineExceeded). These are not task *failures*: retry loops must
/// not retry them and failure counters must not count them.
inline bool IsCancellation(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace casm

/// Propagates a non-OK Status to the caller.
#define CASM_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::casm::Status casm_status_tmp_ = (expr);        \
    if (!casm_status_tmp_.ok()) return casm_status_tmp_; \
  } while (false)

#endif  // CASM_COMMON_STATUS_H_
