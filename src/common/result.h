// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Result<T>: a Status-or-value type in the spirit of absl::StatusOr.

#ifndef CASM_COMMON_RESULT_H_
#define CASM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace casm {

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an error Result aborts the process (programming error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the common error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CASM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CASM_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CASM_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CASM_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace casm

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define CASM_ASSIGN_OR_RETURN(lhs, expr)                       \
  CASM_ASSIGN_OR_RETURN_IMPL_(                                 \
      CASM_STATUS_CONCAT_(casm_result_, __LINE__), lhs, expr)

#define CASM_STATUS_CONCAT_INNER_(a, b) a##b
#define CASM_STATUS_CONCAT_(a, b) CASM_STATUS_CONCAT_INNER_(a, b)
#define CASM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // CASM_COMMON_RESULT_H_
