// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "common/cancellation.h"

#include <algorithm>
#include <thread>

namespace casm {

bool InterruptibleSleep(double seconds, const CancellationToken* token) {
  using clock = std::chrono::steady_clock;
  const auto end = clock::now() + std::chrono::duration_cast<clock::duration>(
                                      std::chrono::duration<double>(seconds));
  // Short slices keep cancellation latency well under a millisecond
  // without measurable scheduler load for realistic injected delays.
  constexpr auto kSlice = std::chrono::microseconds(500);
  for (;;) {
    if (token != nullptr && token->cancelled()) return false;
    const auto now = clock::now();
    if (now >= end) return true;
    std::this_thread::sleep_for(std::min<clock::duration>(kSlice, end - now));
  }
}

}  // namespace casm
