// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Deterministic, fast pseudo-random generator (splitmix64) used by the
// synthetic workload generators and the Monte-Carlo cost-model tests.
// std::mt19937_64 is avoided for speed and cross-platform determinism of
// derived distributions.

#ifndef CASM_COMMON_RNG_H_
#define CASM_COMMON_RNG_H_

#include <cstdint>

namespace casm {

/// splitmix64: passes BigCrush, one multiply-xor-shift pipeline per draw.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Returns the next 64 uniform random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace casm

#endif  // CASM_COMMON_RNG_H_
