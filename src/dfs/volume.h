// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// A writable DFS volume backed by a real on-disk directory. dfs/dfs.h
// simulates *placement* of an immutable table; this file adds durable
// named files on top of the same placement logic: a file is split into
// fixed-size byte blocks, every block is CRC32-stamped and written to
// `replication` distinct simulated nodes (subdirectories `node<k>/`),
// and the file becomes visible only when its manifest is atomically
// committed (write temp + fsync + rename). Readers verify each block's
// checksum and fall back to the next replica on mismatch, so torn or
// corrupted blocks degrade to an error — never to silently wrong bytes.
// The checkpoint subsystem (src/ckpt) stores per-job results here.
//
// Storage fault domains (DESIGN.md §12): the volume tolerates failing
// and absent nodes, not just corrupted bytes.
//
//   * Node health: a node whose operations keep failing
//     (`suspect_failure_threshold` consecutive errors) is marked suspect
//     and deprioritized for placement until an operation against it
//     succeeds again.
//   * Write failover: when a block's preferred replica node is down or
//     keeps failing, the writer places the replica on the next healthy
//     node instead; the manifest records the *actual* placement.
//   * Read retry: transient per-replica read errors are retried up to
//     `max_io_retries` times with exponential backoff + decorrelated
//     jitter before falling back to the next replica.
//   * Repair-on-read: a replica that fails its CRC while a good copy
//     exists is rewritten from the good copy, and the rot is counted and
//     logged once per block.
//   * Scrub(): a full verification pass that re-replicates
//     under-replicated blocks, rewrites corrupt replicas, garbage
//     collects stale staging files, and reports per-node damage.
//
// Fault injection: all simulated failures (IO errors, outage windows,
// silent block corruption) come from a common/fault.h FaultPlan —
// `DfsVolumeOptions::fault_plan`, or the process-global CASM_FAULT_PLAN
// plan when unset. Resilience activity is surfaced as DfsVolumeStats,
// "dfs" trace spans/instants, and (via the evaluators) MapReduceMetrics.

#ifndef CASM_DFS_VOLUME_H_
#define CASM_DFS_VOLUME_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace casm {

class FaultPlan;
class TraceRecorder;

struct DfsVolumeOptions {
  /// Simulated cluster nodes (subdirectories of the volume root).
  int num_nodes = 4;
  /// Replicas per block (clamped to num_nodes).
  int replication = 2;
  /// Bytes per block; files are split into blocks of this size.
  int64_t block_size_bytes = 64 * 1024;
  /// Placement seed; the per-file seed also mixes in the file name so
  /// different files spread over different nodes deterministically.
  uint64_t seed = 0xd15c;

  // ---- Resilience knobs (see the header comment).

  /// Retries per replica IO operation after a transient failure (so a
  /// replica op runs at most 1 + max_io_retries times).
  int max_io_retries = 2;
  /// First retry backoff; doubles per retry with decorrelated jitter.
  int64_t io_retry_backoff_initial_ms = 1;
  /// Backoff cap.
  int64_t io_retry_backoff_max_ms = 50;
  /// Consecutive failed operations before a node is marked suspect and
  /// deprioritized for writes.
  int suspect_failure_threshold = 3;
  /// Orphaned staging files older than this are garbage collected by
  /// Open() and Scrub().
  double staging_gc_age_seconds = 3600;

  /// Fault injection source. null = the process-global CASM_FAULT_PLAN
  /// plan (if any). Not owned; must outlive the volume.
  const FaultPlan* fault_plan = nullptr;
  /// Trace recorder for "dfs" spans/instants. null = the global one
  /// (enabled only under CASM_TRACE). Not owned.
  TraceRecorder* trace = nullptr;
};

/// Cumulative resilience counters for one opened volume (shared by every
/// copy of the handle).
struct DfsVolumeStats {
  int64_t io_retries = 0;          // replica ops replayed after backoff
  int64_t write_failovers = 0;     // replicas placed off their preferred node
  int64_t corrupt_replicas = 0;    // CRC/size mismatches observed on read
  int64_t repaired_replicas = 0;   // bad replicas rewritten from a good copy
  int64_t under_replicated_blocks = 0;  // committed/scrubbed below target
  int64_t nodes_suspected = 0;     // suspect transitions (cumulative)
  int64_t staging_files_removed = 0;  // orphans garbage collected
};

/// Result of one Scrub() pass.
struct ScrubReport {
  int64_t files_scanned = 0;
  int64_t blocks_checked = 0;
  int64_t replicas_checked = 0;
  int64_t replicas_missing = 0;
  int64_t replicas_corrupt = 0;
  int64_t replicas_rewritten = 0;
  /// Blocks found below the replication target *before* repairs.
  int64_t under_replicated_blocks = 0;
  /// Blocks with no intact replica anywhere (data loss; not repairable).
  int64_t unrecoverable_blocks = 0;
  int64_t staging_files_removed = 0;
  /// Missing + corrupt replicas found per node.
  std::vector<int64_t> bad_replicas_per_node;

  std::string ToString() const;
};

/// A directory-backed block store. Open() creates the root directory;
/// files are created with CreateFile()/Append()/Commit() (or the
/// WriteFile() convenience), read back with ReadFile(), and are durable
/// and atomic: a file either committed fully or does not exist.
class DfsVolume {
 public:
  /// Per-read diagnostics (how hard the volume had to work).
  struct ReadStats {
    int64_t blocks_read = 0;
    /// Replicas skipped because of a missing file, IO error, short
    /// block, or CRC mismatch before a good copy was found.
    int64_t replica_fallbacks = 0;
    /// Replicas whose bytes were present but failed CRC/size checks.
    int64_t corrupt_replicas = 0;
    /// Bad replicas rewritten from a good copy (repair-on-read).
    int64_t repaired_replicas = 0;
  };

  /// Streaming writer for one file. Append() buffers and seals full
  /// blocks into a staging file; Commit() places replicas and publishes
  /// the manifest atomically. Destroying an uncommitted writer discards
  /// the staged data. Move-only.
  class FileWriter {
   public:
    /// Shared resilience state (health tracking, counters); defined in
    /// volume.cc only — opaque to clients.
    struct Runtime;

    FileWriter(FileWriter&& other) noexcept;
    FileWriter& operator=(FileWriter&& other) noexcept;
    FileWriter(const FileWriter&) = delete;
    FileWriter& operator=(const FileWriter&) = delete;
    ~FileWriter();

    Status Append(std::string_view bytes);

    /// Seals the final block, writes every block to its replicas
    /// (placement via DistributedFile::Store, with failover to the next
    /// healthy node when a preferred node is down or failing), fsyncs
    /// them, then atomically publishes the manifest — which records the
    /// actual replica placement. After an OK Commit the file is durable;
    /// on error nothing is visible. Commit replaces any previously
    /// committed file of the same name.
    Status Commit();

    int64_t bytes_written() const { return total_bytes_; }

   private:
    friend class DfsVolume;
    FileWriter(std::string root, DfsVolumeOptions options, std::string name,
               std::shared_ptr<Runtime> runtime);

    Status EnsureStaging();
    Status SealBlock(std::string_view bytes);
    void Discard();

    std::string root_;
    DfsVolumeOptions options_;
    std::string name_;
    std::string staging_path_;
    std::FILE* staging_ = nullptr;
    std::string pending_;
    std::vector<int64_t> block_sizes_;
    std::vector<uint32_t> block_crcs_;
    int64_t total_bytes_ = 0;
    bool committed_ = false;
    std::shared_ptr<Runtime> runtime_;
  };

  DfsVolume(const DfsVolume&);
  DfsVolume& operator=(const DfsVolume&);
  DfsVolume(DfsVolume&&) noexcept;
  DfsVolume& operator=(DfsVolume&&) noexcept;
  ~DfsVolume();

  /// Opens (creating if needed) a volume rooted at `root_dir`. Garbage
  /// collects stale staging orphans left by crashed writers.
  static Result<DfsVolume> Open(const std::string& root_dir,
                                const DfsVolumeOptions& options = {});

  /// Starts a new file. `name` may contain only [A-Za-z0-9._-] and must
  /// not start with a dot. The file is invisible until Commit().
  Result<FileWriter> CreateFile(const std::string& name) const;

  /// CreateFile + Append + Commit in one call.
  Status WriteFile(const std::string& name, std::string_view bytes) const;

  /// True iff a committed manifest for `name` exists.
  bool Exists(const std::string& name) const;

  /// Reads a committed file back, verifying the manifest checksum and
  /// every block's CRC32. Transient replica errors are retried with
  /// backoff; corrupt replicas fall back to the next replica, are
  /// counted, logged once per block, and repaired from the good copy.
  /// NotFound if never committed; Internal if the manifest is torn or a
  /// block is unreadable on all replicas.
  Result<std::string> ReadFile(const std::string& name,
                               ReadStats* stats = nullptr) const;

  /// Removes the manifest first (the commit point), then the block
  /// replicas. OK if the file does not exist.
  Status DeleteFile(const std::string& name) const;

  /// Names of all committed files, sorted.
  std::vector<std::string> ListFiles() const;

  /// Full verification + repair pass: checks every replica of every
  /// committed block against its manifest, rewrites corrupt replicas and
  /// re-replicates under-replicated blocks from a good copy (rewriting
  /// the manifest when placement changes), garbage collects stale
  /// staging files, and reports per-node damage counts. A follow-up
  /// Scrub() on a repairable volume reports zero under-replicated
  /// blocks.
  Result<ScrubReport> Scrub() const;

  /// Snapshot of this volume's cumulative resilience counters.
  DfsVolumeStats stats() const;

  /// True while `node` is marked suspect (kept failing operations).
  bool NodeSuspect(int node) const;

  const std::string& root() const { return root_; }
  const DfsVolumeOptions& options() const { return options_; }

 private:
  using Runtime = FileWriter::Runtime;

  DfsVolume(std::string root, DfsVolumeOptions options,
            std::shared_ptr<Runtime> runtime);

  std::string root_;
  DfsVolumeOptions options_;
  std::shared_ptr<Runtime> runtime_;
};

}  // namespace casm

#endif  // CASM_DFS_VOLUME_H_
