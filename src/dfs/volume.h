// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// A writable DFS volume backed by a real on-disk directory. dfs/dfs.h
// simulates *placement* of an immutable table; this file adds durable
// named files on top of the same placement logic: a file is split into
// fixed-size byte blocks, every block is CRC32-stamped and written to
// `replication` distinct simulated nodes (subdirectories `node<k>/`),
// and the file becomes visible only when its manifest is atomically
// committed (write temp + fsync + rename). Readers verify each block's
// checksum and fall back to the next replica on mismatch, so torn or
// corrupted blocks degrade to an error — never to silently wrong bytes.
// The checkpoint subsystem (src/ckpt) stores per-job results here.

#ifndef CASM_DFS_VOLUME_H_
#define CASM_DFS_VOLUME_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace casm {

struct DfsVolumeOptions {
  /// Simulated cluster nodes (subdirectories of the volume root).
  int num_nodes = 4;
  /// Replicas per block (clamped to num_nodes).
  int replication = 2;
  /// Bytes per block; files are split into blocks of this size.
  int64_t block_size_bytes = 64 * 1024;
  /// Placement seed; the per-file seed also mixes in the file name so
  /// different files spread over different nodes deterministically.
  uint64_t seed = 0xd15c;
};

/// A directory-backed block store. Open() creates the root directory;
/// files are created with CreateFile()/Append()/Commit() (or the
/// WriteFile() convenience), read back with ReadFile(), and are durable
/// and atomic: a file either committed fully or does not exist.
class DfsVolume {
 public:
  /// Per-read diagnostics (how hard the volume had to work).
  struct ReadStats {
    int64_t blocks_read = 0;
    /// Replicas skipped because of a missing file, short block, or CRC
    /// mismatch before a good copy was found.
    int64_t replica_fallbacks = 0;
  };

  /// Streaming writer for one file. Append() buffers and seals full
  /// blocks into a staging file; Commit() places replicas and publishes
  /// the manifest atomically. Destroying an uncommitted writer discards
  /// the staged data. Move-only.
  class FileWriter {
   public:
    FileWriter(FileWriter&& other) noexcept;
    FileWriter& operator=(FileWriter&& other) noexcept;
    FileWriter(const FileWriter&) = delete;
    FileWriter& operator=(const FileWriter&) = delete;
    ~FileWriter();

    Status Append(std::string_view bytes);

    /// Seals the final block, writes every block to its replicas
    /// (placement via DistributedFile::Store), fsyncs them, then
    /// atomically publishes the manifest. After an OK Commit the file
    /// is durable; on error nothing is visible. Commit replaces any
    /// previously committed file of the same name.
    Status Commit();

    int64_t bytes_written() const { return total_bytes_; }

   private:
    friend class DfsVolume;
    FileWriter(std::string root, DfsVolumeOptions options, std::string name);

    Status EnsureStaging();
    Status SealBlock(std::string_view bytes);
    void Discard();

    std::string root_;
    DfsVolumeOptions options_;
    std::string name_;
    std::string staging_path_;
    std::FILE* staging_ = nullptr;
    std::string pending_;
    std::vector<int64_t> block_sizes_;
    std::vector<uint32_t> block_crcs_;
    int64_t total_bytes_ = 0;
    bool committed_ = false;
  };

  /// Opens (creating if needed) a volume rooted at `root_dir`.
  static Result<DfsVolume> Open(const std::string& root_dir,
                                const DfsVolumeOptions& options = {});

  /// Starts a new file. `name` may contain only [A-Za-z0-9._-] and must
  /// not start with a dot. The file is invisible until Commit().
  Result<FileWriter> CreateFile(const std::string& name) const;

  /// CreateFile + Append + Commit in one call.
  Status WriteFile(const std::string& name, std::string_view bytes) const;

  /// True iff a committed manifest for `name` exists.
  bool Exists(const std::string& name) const;

  /// Reads a committed file back, verifying the manifest checksum and
  /// every block's CRC32, falling back across replicas on corruption.
  /// NotFound if never committed; Internal if the manifest is torn or a
  /// block is unreadable on all replicas.
  Result<std::string> ReadFile(const std::string& name,
                               ReadStats* stats = nullptr) const;

  /// Removes the manifest first (the commit point), then the block
  /// replicas. OK if the file does not exist.
  Status DeleteFile(const std::string& name) const;

  /// Names of all committed files, sorted.
  std::vector<std::string> ListFiles() const;

  const std::string& root() const { return root_; }
  const DfsVolumeOptions& options() const { return options_; }

 private:
  DfsVolume(std::string root, DfsVolumeOptions options)
      : root_(std::move(root)), options_(options) {}

  std::string root_;
  DfsVolumeOptions options_;
};

}  // namespace casm

#endif  // CASM_DFS_VOLUME_H_
