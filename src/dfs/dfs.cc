// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "dfs/dfs.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace casm {

Result<DistributedFile> DistributedFile::Store(int64_t num_rows,
                                               const DfsOptions& options) {
  if (options.num_nodes < 1) {
    return Status::InvalidArgument("need at least one node");
  }
  if (options.replication < 1) {
    return Status::InvalidArgument("need at least one replica");
  }
  if (options.block_size_rows < 1) {
    return Status::InvalidArgument("block size must be positive");
  }
  DistributedFile file;
  file.options_ = options;
  const int replicas = std::min(options.replication, options.num_nodes);
  Rng rng(options.seed);
  for (int64_t begin = 0; begin < num_rows;
       begin += options.block_size_rows) {
    Block block;
    block.begin_row = begin;
    block.end_row = std::min(num_rows, begin + options.block_size_rows);
    // Sample `replicas` distinct nodes.
    while (static_cast<int>(block.replicas.size()) < replicas) {
      int node = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(options.num_nodes)));
      if (std::find(block.replicas.begin(), block.replicas.end(), node) ==
          block.replicas.end()) {
        block.replicas.push_back(node);
      }
    }
    file.blocks_.push_back(std::move(block));
  }
  return file;
}

DistributedFile::Assignment DistributedFile::AssignSplits(
    int num_mappers) const {
  CASM_CHECK_GE(num_mappers, 1);
  Assignment assignment;
  assignment.mapper_blocks.resize(static_cast<size_t>(num_mappers));
  assignment.mapper_node.resize(static_cast<size_t>(num_mappers));
  for (int m = 0; m < num_mappers; ++m) {
    assignment.mapper_node[static_cast<size_t>(m)] = m % options_.num_nodes;
  }

  // Mappers per node (a node may host several map slots).
  std::vector<std::vector<int>> node_mappers(
      static_cast<size_t>(options_.num_nodes));
  for (int m = 0; m < num_mappers; ++m) {
    node_mappers[static_cast<size_t>(m % options_.num_nodes)].push_back(m);
  }

  const int64_t target_per_mapper =
      (num_blocks() + num_mappers - 1) / num_mappers;
  std::vector<int64_t> load(static_cast<size_t>(num_mappers), 0);

  auto least_loaded_of = [&](const std::vector<int>& mappers) {
    int best = -1;
    for (int m : mappers) {
      if (best < 0 ||
          load[static_cast<size_t>(m)] < load[static_cast<size_t>(best)]) {
        best = m;
      }
    }
    return best;
  };

  std::vector<int> leftovers;
  for (int b = 0; b < num_blocks(); ++b) {
    // Prefer a replica-local mapper with spare capacity.
    int chosen = -1;
    for (int node : block(b).replicas) {
      const std::vector<int>& mappers = node_mappers[static_cast<size_t>(node)];
      if (mappers.empty()) continue;
      int candidate = least_loaded_of(mappers);
      if (candidate >= 0 &&
          load[static_cast<size_t>(candidate)] < target_per_mapper &&
          (chosen < 0 || load[static_cast<size_t>(candidate)] <
                             load[static_cast<size_t>(chosen)])) {
        chosen = candidate;
      }
    }
    if (chosen >= 0) {
      assignment.mapper_blocks[static_cast<size_t>(chosen)].push_back(b);
      ++load[static_cast<size_t>(chosen)];
      ++assignment.local_block_reads;
    } else {
      leftovers.push_back(b);
    }
  }
  // Remote reads: balance leftovers over all mappers.
  for (int b : leftovers) {
    int chosen = 0;
    for (int m = 1; m < num_mappers; ++m) {
      if (load[static_cast<size_t>(m)] < load[static_cast<size_t>(chosen)]) {
        chosen = m;
      }
    }
    assignment.mapper_blocks[static_cast<size_t>(chosen)].push_back(b);
    ++load[static_cast<size_t>(chosen)];
    ++assignment.remote_block_reads;
  }
  return assignment;
}

}  // namespace casm
