// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// A simulated distributed file substrate (paper §III-A: "The data records
// are stored in a distributed file in a machine cluster with shared-
// nothing architecture. Each file block has multiple replicas in the
// system to achieve better accessibility."). A table is split into
// fixed-size row blocks, each block's replicas are placed on distinct
// nodes, and map tasks are assigned blocks with a locality-aware greedy
// scheduler. The evaluator runs unchanged — the assignment only changes
// which rows each mapper reads and how many of those reads are
// node-local, which the metrics report.

#ifndef CASM_DFS_DFS_H_
#define CASM_DFS_DFS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace casm {

struct DfsOptions {
  int num_nodes = 16;
  /// Replicas per block (the paper's system keeps three).
  int replication = 3;
  int64_t block_size_rows = 4096;
  uint64_t seed = 0xd15c;
};

/// Block placement of one stored table and locality-aware split
/// assignment. Immutable after Store().
class DistributedFile {
 public:
  struct Block {
    int64_t begin_row = 0;
    int64_t end_row = 0;  // exclusive
    /// Nodes holding a replica (distinct, size = min(replication, nodes)).
    std::vector<int> replicas;
  };

  /// Splits `num_rows` into blocks and places replicas pseudo-randomly
  /// (deterministic in options.seed).
  static Result<DistributedFile> Store(int64_t num_rows,
                                       const DfsOptions& options);

  int num_nodes() const { return options_.num_nodes; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const Block& block(int index) const {
    return blocks_[static_cast<size_t>(index)];
  }

  /// Result of assigning blocks to map tasks.
  struct Assignment {
    /// Blocks processed by each mapper (indices into block()).
    std::vector<std::vector<int>> mapper_blocks;
    /// Node each mapper runs on (round-robin over the cluster).
    std::vector<int> mapper_node;
    int64_t local_block_reads = 0;
    int64_t remote_block_reads = 0;

    double LocalityFraction() const {
      int64_t total = local_block_reads + remote_block_reads;
      return total == 0 ? 1.0
                        : static_cast<double>(local_block_reads) /
                              static_cast<double>(total);
    }
  };

  /// Greedy locality-aware scheduling: mappers (round-robin over nodes)
  /// pick replica-local blocks first; leftovers are assigned to the least
  /// loaded mapper as remote reads. Every block is assigned exactly once.
  Assignment AssignSplits(int num_mappers) const;

 private:
  DfsOptions options_;
  std::vector<Block> blocks_;
};

}  // namespace casm

#endif  // CASM_DFS_DFS_H_
