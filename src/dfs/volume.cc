// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "dfs/volume.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"
#include "dfs/dfs.h"

namespace casm {
namespace {

namespace fs = std::filesystem;

bool ValidFileName(const std::string& name) {
  if (name.empty() || name.size() > 200 || name[0] == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string CrcHex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

std::string ManifestPath(const std::string& root, const std::string& name) {
  return root + "/" + name + ".manifest";
}

std::string BlockPath(const std::string& root, int node,
                      const std::string& name, int block) {
  return root + "/node" + std::to_string(node) + "/" + name + ".blk" +
         std::to_string(block);
}

/// fflush + fsync so the bytes survive a crash, not just a process exit.
Status SyncAndClose(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("cannot flush " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    return Status::Internal("cannot fsync " + path);
  }
  if (std::fclose(file) != 0) {
    return Status::Internal("cannot close " + path);
  }
  return Status::OK();
}

/// fsync on a directory makes a just-renamed entry durable.
Status SyncDirectory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal("cannot open directory " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("cannot fsync directory " + path);
  return Status::OK();
}

Status WriteAndSync(const std::string& path, std::string_view bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::Internal("cannot create " + path);
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    std::fclose(file);
    std::remove(path.c_str());
    return Status::Internal("short write to " + path);
  }
  return SyncAndClose(file, path);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const size_t n = std::fread(buf, 1, sizeof(buf), file);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) return Status::Internal("read error on " + path);
  return out;
}

/// Parsed committed-file metadata.
struct Manifest {
  int64_t total_bytes = 0;
  int64_t block_size = 0;
  struct Block {
    int64_t size = 0;
    uint32_t crc = 0;
    std::vector<int> replicas;
  };
  std::vector<Block> blocks;
};

/// Strict parse of the manifest text. The trailing `end <crc>` line
/// checksums everything before it, so a torn (truncated or bit-flipped)
/// manifest is rejected here and the file is treated as not committed.
Result<Manifest> ParseManifest(const std::string& text,
                               const std::string& name) {
  const auto corrupt = [&](const std::string& why) {
    return Status::Internal("manifest for '" + name + "' corrupt: " + why);
  };
  const size_t end_pos = text.rfind("\nend ");
  if (end_pos == std::string::npos) return corrupt("missing end line");
  const std::string body = text.substr(0, end_pos + 1);  // includes '\n'
  std::istringstream tail(text.substr(end_pos + 1));
  std::string word, end_crc_hex;
  if (!(tail >> word >> end_crc_hex) || word != "end") {
    return corrupt("malformed end line");
  }
  if (CrcHex(Crc32(body)) != end_crc_hex) return corrupt("checksum mismatch");

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != "casm-dfs-manifest v1") {
    return corrupt("bad header");
  }
  Manifest m;
  std::string manifest_name;
  int64_t num_blocks = -1;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      fields >> manifest_name;
    } else if (key == "bytes") {
      fields >> m.total_bytes;
    } else if (key == "block_size") {
      fields >> m.block_size;
    } else if (key == "blocks") {
      fields >> num_blocks;
    } else if (key == "block") {
      int64_t index = -1;
      Manifest::Block b;
      std::string crc_hex;
      fields >> index >> b.size >> crc_hex;
      if (fields.fail() || index != static_cast<int64_t>(m.blocks.size()) ||
          b.size < 0 || crc_hex.size() != 8) {
        return corrupt("malformed block line");
      }
      b.crc = static_cast<uint32_t>(std::stoul(crc_hex, nullptr, 16));
      int node = -1;
      while (fields >> node) b.replicas.push_back(node);
      if (b.replicas.empty()) return corrupt("block without replicas");
      m.blocks.push_back(std::move(b));
    } else if (!key.empty()) {
      return corrupt("unknown field '" + key + "'");
    }
    if (fields.bad()) return corrupt("unreadable line");
  }
  if (manifest_name != name) return corrupt("name mismatch");
  if (num_blocks != static_cast<int64_t>(m.blocks.size())) {
    return corrupt("block count mismatch");
  }
  int64_t sum = 0;
  for (const Manifest::Block& b : m.blocks) sum += b.size;
  if (sum != m.total_bytes) return corrupt("size mismatch");
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileWriter

DfsVolume::FileWriter::FileWriter(std::string root, DfsVolumeOptions options,
                                  std::string name)
    : root_(std::move(root)),
      options_(options),
      name_(std::move(name)),
      staging_path_(root_ + "/." + name_ + ".staging") {}

DfsVolume::FileWriter::FileWriter(FileWriter&& other) noexcept
    : root_(std::move(other.root_)),
      options_(other.options_),
      name_(std::move(other.name_)),
      staging_path_(std::move(other.staging_path_)),
      staging_(other.staging_),
      pending_(std::move(other.pending_)),
      block_sizes_(std::move(other.block_sizes_)),
      block_crcs_(std::move(other.block_crcs_)),
      total_bytes_(other.total_bytes_),
      committed_(other.committed_) {
  other.staging_ = nullptr;
  other.committed_ = true;  // moved-from shell owns nothing to discard
}

DfsVolume::FileWriter& DfsVolume::FileWriter::operator=(
    FileWriter&& other) noexcept {
  if (this != &other) {
    Discard();
    root_ = std::move(other.root_);
    options_ = other.options_;
    name_ = std::move(other.name_);
    staging_path_ = std::move(other.staging_path_);
    staging_ = other.staging_;
    pending_ = std::move(other.pending_);
    block_sizes_ = std::move(other.block_sizes_);
    block_crcs_ = std::move(other.block_crcs_);
    total_bytes_ = other.total_bytes_;
    committed_ = other.committed_;
    other.staging_ = nullptr;
    other.committed_ = true;
  }
  return *this;
}

DfsVolume::FileWriter::~FileWriter() { Discard(); }

void DfsVolume::FileWriter::Discard() {
  if (staging_ != nullptr) {
    std::fclose(staging_);
    staging_ = nullptr;
  }
  if (!committed_ && !staging_path_.empty()) {
    std::remove(staging_path_.c_str());
  }
}

Status DfsVolume::FileWriter::EnsureStaging() {
  if (staging_ != nullptr) return Status::OK();
  staging_ = std::fopen(staging_path_.c_str(), "wb");
  if (staging_ == nullptr) {
    return Status::Internal("cannot create staging file " + staging_path_);
  }
  return Status::OK();
}

Status DfsVolume::FileWriter::SealBlock(std::string_view bytes) {
  CASM_RETURN_IF_ERROR(EnsureStaging());
  if (std::fwrite(bytes.data(), 1, bytes.size(), staging_) != bytes.size()) {
    return Status::Internal("short write to staging file " + staging_path_);
  }
  block_sizes_.push_back(static_cast<int64_t>(bytes.size()));
  block_crcs_.push_back(Crc32(bytes));
  return Status::OK();
}

Status DfsVolume::FileWriter::Append(std::string_view bytes) {
  if (committed_) {
    return Status::FailedPrecondition("Append after Commit on '" + name_ +
                                      "'");
  }
  total_bytes_ += static_cast<int64_t>(bytes.size());
  pending_.append(bytes.data(), bytes.size());
  const size_t block = static_cast<size_t>(options_.block_size_bytes);
  while (pending_.size() >= block) {
    CASM_RETURN_IF_ERROR(SealBlock(std::string_view(pending_).substr(0, block)));
    pending_.erase(0, block);
  }
  return Status::OK();
}

Status DfsVolume::FileWriter::Commit() {
  if (committed_) {
    return Status::FailedPrecondition("double Commit on '" + name_ + "'");
  }
  if (!pending_.empty()) {
    CASM_RETURN_IF_ERROR(SealBlock(pending_));
    pending_.clear();
  }
  const int num_blocks = static_cast<int>(block_sizes_.size());
  if (staging_ != nullptr) {
    std::FILE* f = staging_;
    staging_ = nullptr;
    CASM_RETURN_IF_ERROR(SyncAndClose(f, staging_path_));
  }

  // Replica placement reuses the table-placement logic: one "row" per
  // block, replicas on distinct nodes, deterministic in (seed, name).
  DfsOptions placement_options;
  placement_options.num_nodes = options_.num_nodes;
  placement_options.replication = options_.replication;
  placement_options.block_size_rows = 1;
  placement_options.seed = options_.seed ^ Fnv1a64(name_);
  std::vector<std::vector<int>> replicas(static_cast<size_t>(num_blocks));
  if (num_blocks > 0) {
    CASM_ASSIGN_OR_RETURN(
        DistributedFile placement,
        DistributedFile::Store(num_blocks, placement_options));
    CASM_CHECK_EQ(placement.num_blocks(), num_blocks);
    for (int i = 0; i < num_blocks; ++i) {
      replicas[static_cast<size_t>(i)] = placement.block(i).replicas;
    }
  }

  // Copy each staged block to its replica paths, fsyncing every copy.
  std::FILE* staged = nullptr;
  if (num_blocks > 0) {
    staged = std::fopen(staging_path_.c_str(), "rb");
    if (staged == nullptr) {
      return Status::Internal("cannot reopen staging file " + staging_path_);
    }
  }
  std::string block_bytes;
  Status status;
  for (int i = 0; i < num_blocks && status.ok(); ++i) {
    block_bytes.resize(static_cast<size_t>(block_sizes_[static_cast<size_t>(i)]));
    if (!block_bytes.empty() &&
        std::fread(block_bytes.data(), 1, block_bytes.size(), staged) !=
            block_bytes.size()) {
      status = Status::Internal("short read from staging file " +
                                staging_path_);
      break;
    }
    for (int node : replicas[static_cast<size_t>(i)]) {
      std::error_code ec;
      fs::create_directories(root_ + "/node" + std::to_string(node), ec);
      status = WriteAndSync(BlockPath(root_, node, name_, i), block_bytes);
      if (!status.ok()) break;
    }
  }
  if (staged != nullptr) std::fclose(staged);
  CASM_RETURN_IF_ERROR(status);

  // Build and atomically publish the manifest: temp + fsync + rename +
  // directory fsync. The rename is the commit point.
  std::ostringstream manifest;
  manifest << "casm-dfs-manifest v1\n";
  manifest << "name " << name_ << "\n";
  manifest << "bytes " << total_bytes_ << "\n";
  manifest << "block_size " << options_.block_size_bytes << "\n";
  manifest << "blocks " << num_blocks << "\n";
  for (int i = 0; i < num_blocks; ++i) {
    manifest << "block " << i << " " << block_sizes_[static_cast<size_t>(i)]
             << " " << CrcHex(block_crcs_[static_cast<size_t>(i)]);
    for (int node : replicas[static_cast<size_t>(i)]) manifest << " " << node;
    manifest << "\n";
  }
  const std::string body = manifest.str();
  const std::string text = body + "end " + CrcHex(Crc32(body)) + "\n";
  const std::string final_path = ManifestPath(root_, name_);
  const std::string tmp_path = final_path + ".tmp";
  CASM_RETURN_IF_ERROR(WriteAndSync(tmp_path, text));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot rename manifest for '" + name_ + "'");
  }
  CASM_RETURN_IF_ERROR(SyncDirectory(root_));

  committed_ = true;
  std::remove(staging_path_.c_str());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DfsVolume

Result<DfsVolume> DfsVolume::Open(const std::string& root_dir,
                                  const DfsVolumeOptions& options) {
  if (root_dir.empty()) {
    return Status::InvalidArgument("DfsVolume root directory is empty");
  }
  if (options.num_nodes < 1 || options.replication < 1 ||
      options.block_size_bytes < 1) {
    return Status::InvalidArgument("invalid DfsVolumeOptions");
  }
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::Internal("cannot create volume root " + root_dir + ": " +
                            ec.message());
  }
  DfsVolumeOptions clamped = options;
  clamped.replication = std::min(clamped.replication, clamped.num_nodes);
  return DfsVolume(root_dir, clamped);
}

Result<DfsVolume::FileWriter> DfsVolume::CreateFile(
    const std::string& name) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("invalid DFS file name '" + name + "'");
  }
  return FileWriter(root_, options_, name);
}

Status DfsVolume::WriteFile(const std::string& name,
                            std::string_view bytes) const {
  CASM_ASSIGN_OR_RETURN(FileWriter writer, CreateFile(name));
  CASM_RETURN_IF_ERROR(writer.Append(bytes));
  return writer.Commit();
}

bool DfsVolume::Exists(const std::string& name) const {
  if (!ValidFileName(name)) return false;
  std::error_code ec;
  return fs::exists(ManifestPath(root_, name), ec);
}

Result<std::string> DfsVolume::ReadFile(const std::string& name,
                                        ReadStats* stats) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("invalid DFS file name '" + name + "'");
  }
  std::error_code ec;
  const std::string manifest_path = ManifestPath(root_, name);
  if (!fs::exists(manifest_path, ec)) {
    return Status::NotFound("no committed file '" + name + "' in " + root_);
  }
  CASM_ASSIGN_OR_RETURN(std::string manifest_text,
                        ReadWholeFile(manifest_path));
  CASM_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(manifest_text, name));

  std::string out;
  out.reserve(static_cast<size_t>(manifest.total_bytes));
  for (size_t i = 0; i < manifest.blocks.size(); ++i) {
    const Manifest::Block& block = manifest.blocks[i];
    bool found = false;
    for (int node : block.replicas) {
      Result<std::string> bytes =
          ReadWholeFile(BlockPath(root_, node, name, static_cast<int>(i)));
      if (bytes.ok() &&
          static_cast<int64_t>(bytes->size()) == block.size &&
          Crc32(*bytes) == block.crc) {
        out.append(*bytes);
        found = true;
        break;
      }
      if (stats != nullptr) ++stats->replica_fallbacks;
    }
    if (!found) {
      return Status::Internal("block " + std::to_string(i) + " of '" + name +
                              "' failed checksum on all replicas");
    }
    if (stats != nullptr) ++stats->blocks_read;
  }
  if (static_cast<int64_t>(out.size()) != manifest.total_bytes) {
    return Status::Internal("reassembled size mismatch for '" + name + "'");
  }
  return out;
}

Status DfsVolume::DeleteFile(const std::string& name) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("invalid DFS file name '" + name + "'");
  }
  // Remove the manifest first: once it is gone the file "does not
  // exist" and leftover blocks are garbage, not a torn file.
  std::remove(ManifestPath(root_, name).c_str());
  std::error_code ec;
  for (int node = 0; node < options_.num_nodes; ++node) {
    const std::string dir = root_ + "/node" + std::to_string(node);
    if (!fs::exists(dir, ec)) continue;
    const std::string prefix = name + ".blk";
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string file = entry.path().filename().string();
      if (file.rfind(prefix, 0) == 0) {
        std::remove(entry.path().string().c_str());
      }
    }
  }
  std::remove((root_ + "/." + name + ".staging").c_str());
  return Status::OK();
}

std::vector<std::string> DfsVolume::ListFiles() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string file = entry.path().filename().string();
    const std::string suffix = ".manifest";
    if (file.size() > suffix.size() &&
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
      names.push_back(file.substr(0, file.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace casm
