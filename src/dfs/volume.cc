// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.

#include "dfs/volume.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "dfs/dfs.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace casm {
namespace {

namespace fs = std::filesystem;

bool ValidFileName(const std::string& name) {
  if (name.empty() || name.size() > 200 || name[0] == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finalizer, for deterministic backoff jitter.
uint64_t MixBits(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string CrcHex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

std::string ManifestPath(const std::string& root, const std::string& name) {
  return root + "/" + name + ".manifest";
}

std::string BlockPath(const std::string& root, int node,
                      const std::string& name, int block) {
  return root + "/node" + std::to_string(node) + "/" + name + ".blk" +
         std::to_string(block);
}

/// fflush + fsync so the bytes survive a crash, not just a process exit.
Status SyncAndClose(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("cannot flush " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    return Status::Internal("cannot fsync " + path);
  }
  if (std::fclose(file) != 0) {
    return Status::Internal("cannot close " + path);
  }
  return Status::OK();
}

/// fsync on a directory makes a just-renamed entry durable.
Status SyncDirectory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal("cannot open directory " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("cannot fsync directory " + path);
  return Status::OK();
}

Status WriteAndSync(const std::string& path, std::string_view bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::Internal("cannot create " + path);
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    std::fclose(file);
    std::remove(path.c_str());
    return Status::Internal("short write to " + path);
  }
  return SyncAndClose(file, path);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const size_t n = std::fread(buf, 1, sizeof(buf), file);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool bad = std::ferror(file) != 0;
  std::fclose(file);
  if (bad) return Status::Internal("read error on " + path);
  return out;
}

/// Parsed committed-file metadata.
struct Manifest {
  int64_t total_bytes = 0;
  int64_t block_size = 0;
  struct Block {
    int64_t size = 0;
    uint32_t crc = 0;
    std::vector<int> replicas;
  };
  std::vector<Block> blocks;
};

/// Strict parse of the manifest text. The trailing `end <crc>` line
/// checksums everything before it, so a torn (truncated or bit-flipped)
/// manifest is rejected here and the file is treated as not committed.
Result<Manifest> ParseManifest(const std::string& text,
                               const std::string& name) {
  const auto corrupt = [&](const std::string& why) {
    return Status::Internal("manifest for '" + name + "' corrupt: " + why);
  };
  const size_t end_pos = text.rfind("\nend ");
  if (end_pos == std::string::npos) return corrupt("missing end line");
  const std::string body = text.substr(0, end_pos + 1);  // includes '\n'
  std::istringstream tail(text.substr(end_pos + 1));
  std::string word, end_crc_hex;
  if (!(tail >> word >> end_crc_hex) || word != "end") {
    return corrupt("malformed end line");
  }
  if (CrcHex(Crc32(body)) != end_crc_hex) return corrupt("checksum mismatch");

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != "casm-dfs-manifest v1") {
    return corrupt("bad header");
  }
  Manifest m;
  std::string manifest_name;
  int64_t num_blocks = -1;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      fields >> manifest_name;
    } else if (key == "bytes") {
      fields >> m.total_bytes;
    } else if (key == "block_size") {
      fields >> m.block_size;
    } else if (key == "blocks") {
      fields >> num_blocks;
    } else if (key == "block") {
      int64_t index = -1;
      Manifest::Block b;
      std::string crc_hex;
      fields >> index >> b.size >> crc_hex;
      if (fields.fail() || index != static_cast<int64_t>(m.blocks.size()) ||
          b.size < 0 || crc_hex.size() != 8) {
        return corrupt("malformed block line");
      }
      b.crc = static_cast<uint32_t>(std::stoul(crc_hex, nullptr, 16));
      int node = -1;
      while (fields >> node) b.replicas.push_back(node);
      if (b.replicas.empty()) return corrupt("block without replicas");
      m.blocks.push_back(std::move(b));
    } else if (!key.empty()) {
      return corrupt("unknown field '" + key + "'");
    }
    if (fields.bad()) return corrupt("unreadable line");
  }
  if (manifest_name != name) return corrupt("name mismatch");
  if (num_blocks != static_cast<int64_t>(m.blocks.size())) {
    return corrupt("block count mismatch");
  }
  int64_t sum = 0;
  for (const Manifest::Block& b : m.blocks) sum += b.size;
  if (sum != m.total_bytes) return corrupt("size mismatch");
  return m;
}

/// Builds and atomically publishes the manifest for `name`: temp + fsync +
/// rename + directory fsync. The rename is the commit point. Shared by
/// FileWriter::Commit() and Scrub()'s re-replication path.
Status PublishManifest(const std::string& root, const std::string& name,
                       int64_t total_bytes, int64_t block_size,
                       const std::vector<int64_t>& sizes,
                       const std::vector<uint32_t>& crcs,
                       const std::vector<std::vector<int>>& replicas) {
  const int num_blocks = static_cast<int>(sizes.size());
  std::ostringstream manifest;
  manifest << "casm-dfs-manifest v1\n";
  manifest << "name " << name << "\n";
  manifest << "bytes " << total_bytes << "\n";
  manifest << "block_size " << block_size << "\n";
  manifest << "blocks " << num_blocks << "\n";
  for (int i = 0; i < num_blocks; ++i) {
    manifest << "block " << i << " " << sizes[static_cast<size_t>(i)] << " "
             << CrcHex(crcs[static_cast<size_t>(i)]);
    for (int node : replicas[static_cast<size_t>(i)]) manifest << " " << node;
    manifest << "\n";
  }
  const std::string body = manifest.str();
  const std::string text = body + "end " + CrcHex(Crc32(body)) + "\n";
  const std::string final_path = ManifestPath(root, name);
  const std::string tmp_path = final_path + ".tmp";
  CASM_RETURN_IF_ERROR(WriteAndSync(tmp_path, text));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot rename manifest for '" + name + "'");
  }
  return SyncDirectory(root);
}

const FaultPlan* ResolvedPlan(const DfsVolumeOptions& options) {
  return options.fault_plan != nullptr ? options.fault_plan
                                       : FaultPlan::FromEnv();
}

TraceRecorder* ResolvedTrace(const DfsVolumeOptions& options) {
  return options.trace != nullptr ? options.trace : TraceRecorder::Global();
}

/// Decorrelated-jitter backoff sleep before IO retry number `retry`
/// (0-based): uniform in [base, min(cap, base * 3^retry)], jitter hashed
/// from the site so replays are deterministic.
void SleepIoBackoff(const DfsVolumeOptions& options, int retry,
                    uint64_t site) {
  const double base =
      static_cast<double>(std::max<int64_t>(options.io_retry_backoff_initial_ms, 0)) /
      1000.0;
  if (base <= 0) return;
  const double cap =
      static_cast<double>(std::max(options.io_retry_backoff_max_ms,
                                   options.io_retry_backoff_initial_ms)) /
      1000.0;
  double hi = base;
  for (int i = 0; i < retry && hi < cap; ++i) hi *= 3;
  hi = std::min(hi, cap);
  const double unit =
      UnitFromHash(MixBits(site ^ (0xb0ffull + static_cast<uint64_t>(retry))));
  const double delay = base + unit * (hi - base);
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

/// Mirrors one DFS resilience incident into the process-wide metrics
/// registry and flight recorder. Every call site is a failure path
/// (retry, failover, rot) whose cost is dominated by the I/O it
/// annotates, so the per-event instrument lookup is acceptable; with
/// observability off this is two relaxed loads.
void ObserveDfsIncident(const char* counter, const char* help,
                        const char* event, int block, std::string detail) {
  MetricsRegistry* const registry = MetricsRegistry::Global();
  if (registry->enabled()) {
    registry->GetCounter(counter, help)->IncrementAlways(1);
  }
  FlightRecorder* const flight = FlightRecorder::Global();
  if (flight->enabled()) {
    flight->Record("dfs", event, block, /*attempt=*/0, std::move(detail));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Runtime: resilience state shared by every copy of a volume handle.

struct DfsVolume::FileWriter::Runtime {
  explicit Runtime(int num_nodes)
      : node_failures(static_cast<size_t>(num_nodes)),
        node_suspect(static_cast<size_t>(num_nodes)) {}

  /// Consecutive failed operations per node; reset by any success.
  std::vector<std::atomic<int>> node_failures;
  /// Sticky until an operation on the node succeeds again.
  std::vector<std::atomic<bool>> node_suspect;

  std::atomic<int64_t> io_retries{0};
  std::atomic<int64_t> write_failovers{0};
  std::atomic<int64_t> corrupt_replicas{0};
  std::atomic<int64_t> repaired_replicas{0};
  std::atomic<int64_t> under_replicated_blocks{0};
  std::atomic<int64_t> nodes_suspected{0};
  std::atomic<int64_t> staging_files_removed{0};

  /// Keys "<file>#<block>" whose corruption was already logged, so rot is
  /// reported to stderr once per block, not once per read.
  std::mutex log_mu;
  std::set<std::string> logged_corrupt;

  void RecordNodeResult(const DfsVolumeOptions& options, int node, bool ok) {
    if (node < 0 || node >= static_cast<int>(node_failures.size())) return;
    auto& failures = node_failures[static_cast<size_t>(node)];
    auto& suspect = node_suspect[static_cast<size_t>(node)];
    if (ok) {
      failures.store(0, std::memory_order_relaxed);
      suspect.store(false, std::memory_order_relaxed);
      return;
    }
    const int f = failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (f >= options.suspect_failure_threshold &&
        !suspect.exchange(true, std::memory_order_relaxed)) {
      nodes_suspected.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool Suspect(int node) const {
    if (node < 0 || node >= static_cast<int>(node_suspect.size())) {
      return false;
    }
    return node_suspect[static_cast<size_t>(node)].load(
        std::memory_order_relaxed);
  }

  /// Logs one corrupt-replica line per (file, block).
  void LogCorruptOnce(const std::string& name, int block, int node) {
    const std::string key = name + "#" + std::to_string(block);
    {
      std::unique_lock<std::mutex> lock(log_mu);
      if (!logged_corrupt.insert(key).second) return;
    }
    CASM_LOG(WARN) << "casm-dfs: corrupt replica of '" << name << "' block "
                   << block << " on node " << node << " (checksum mismatch)";
  }
};

namespace {

using Runtime = DfsVolume::FileWriter::Runtime;

/// One replica write with fault injection, health accounting, and bounded
/// retry + backoff. A FaultPlan corruption spec makes the write *succeed*
/// with rotted bytes — silent rot that only a CRC check can see later.
/// Returns immediately (no retries) when the node is in an outage window.
Status WriteReplicaWithRetry(const std::string& root,
                             const DfsVolumeOptions& options,
                             const FaultPlan* plan, Runtime* runtime,
                             TraceRecorder* trace, const std::string& name,
                             int block, int node, std::string_view bytes) {
  if (plan != nullptr && plan->NodeDown(node)) {
    return Status::Internal("node " + std::to_string(node) + " is down");
  }
  const std::string path = BlockPath(root, node, name, block);
  std::error_code ec;
  fs::create_directories(root + "/node" + std::to_string(node), ec);
  const uint64_t site = Fnv1a64(name) ^ (static_cast<uint64_t>(block) << 8) ^
                        static_cast<uint64_t>(node);
  Status last;
  for (int retry = 0;; ++retry) {
    Status s;
    bool rot = false;
    if (plan != nullptr && plan->armed()) {
      s = plan->OnIo("write", node);
      if (s.ok()) rot = plan->ShouldCorruptBlock(name, block, node);
    }
    if (s.ok()) {
      if (rot) {
        std::string rotted(bytes);
        if (rotted.empty()) {
          rotted.push_back('\x01');
        } else {
          rotted[0] = static_cast<char>(rotted[0] ^ 0x40);
        }
        s = WriteAndSync(path, rotted);
      } else {
        s = WriteAndSync(path, bytes);
      }
    }
    if (runtime != nullptr) runtime->RecordNodeResult(options, node, s.ok());
    if (s.ok()) return s;
    last = std::move(s);
    if (retry >= options.max_io_retries ||
        (plan != nullptr && plan->NodeDown(node))) {
      return last;
    }
    if (runtime != nullptr) {
      runtime->io_retries.fetch_add(1, std::memory_order_relaxed);
    }
    if (trace != nullptr && trace->enabled()) {
      trace->RecordInstant("dfs", "dfs-retry", block,
                           "write node=" + std::to_string(node) + " " +
                               last.message());
    }
    ObserveDfsIncident("casm_dfs_io_retries_total",
                       "DFS replica I/O attempts that were retried.",
                       "dfs-retry", block,
                       "write node=" + std::to_string(node) + " " +
                           last.message());
    SleepIoBackoff(options, retry, site);
  }
}

/// One replica read with fault injection, health accounting, and bounded
/// retry + backoff. NotFound (replica file absent) is deterministic and
/// returned immediately; transient errors are retried.
Result<std::string> ReadReplicaWithRetry(const std::string& root,
                                         const DfsVolumeOptions& options,
                                         const FaultPlan* plan,
                                         Runtime* runtime,
                                         TraceRecorder* trace,
                                         const std::string& name, int block,
                                         int node) {
  const std::string path = BlockPath(root, node, name, block);
  const uint64_t site = Fnv1a64(name) ^ (static_cast<uint64_t>(block) << 8) ^
                        static_cast<uint64_t>(node) ^ 0x4eadull;
  for (int retry = 0;; ++retry) {
    Status injected;
    if (plan != nullptr && plan->armed()) injected = plan->OnIo("read", node);
    Result<std::string> bytes =
        injected.ok() ? ReadWholeFile(path) : Result<std::string>(injected);
    if (bytes.ok()) {
      if (runtime != nullptr) runtime->RecordNodeResult(options, node, true);
      return bytes;
    }
    if (bytes.status().code() == StatusCode::kNotFound) return bytes;
    if (runtime != nullptr) runtime->RecordNodeResult(options, node, false);
    if (retry >= options.max_io_retries ||
        (plan != nullptr && plan->NodeDown(node))) {
      return bytes;
    }
    if (runtime != nullptr) {
      runtime->io_retries.fetch_add(1, std::memory_order_relaxed);
    }
    if (trace != nullptr && trace->enabled()) {
      trace->RecordInstant("dfs", "dfs-retry", block,
                           "read node=" + std::to_string(node) + " " +
                               bytes.status().message());
    }
    ObserveDfsIncident("casm_dfs_io_retries_total",
                       "DFS replica I/O attempts that were retried.",
                       "dfs-retry", block,
                       "read node=" + std::to_string(node) + " " +
                           bytes.status().message());
    SleepIoBackoff(options, retry, site);
  }
}

// ---------------------------------------------------------------------------
// Live-staging registry.
//
// Several concurrent queries may legitimately share one volume root (the
// multi-query service pointing every checkpointing query at a single
// CASM_CHECKPOINT_DIR). Staging GC used to decide liveness by mtime
// alone, so a volume Open()/Scrub() racing a slow in-flight writer —
// trivially with staging_gc_age_seconds lowered for tests, and for any
// writer stalled past the age in production — could delete a staging
// file the writer still needs: Commit() reopens it "rb" after the sync
// and would fail. Every open FileWriter therefore registers its staging
// path process-wide, and GC skips registered paths no matter their age.

std::mutex& LiveStagingMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::set<std::string>& LiveStagingPaths() {
  static std::set<std::string>* paths = new std::set<std::string>;
  return *paths;
}

/// One spelling per file, so registration (root + "/." + name +
/// ".staging") and GC (directory-iterator paths) agree even when the two
/// spell the root differently ("dir" vs "dir/").
std::string StagingKey(const std::string& path) {
  std::error_code ec;
  fs::path normalized = fs::absolute(path, ec);
  if (ec) return path;
  return normalized.lexically_normal().string();
}

void RegisterLiveStaging(const std::string& path) {
  std::lock_guard<std::mutex> lock(LiveStagingMutex());
  LiveStagingPaths().insert(StagingKey(path));
}

void UnregisterLiveStaging(const std::string& path) {
  std::lock_guard<std::mutex> lock(LiveStagingMutex());
  LiveStagingPaths().erase(StagingKey(path));
}

bool IsLiveStaging(const std::string& path) {
  std::lock_guard<std::mutex> lock(LiveStagingMutex());
  return LiveStagingPaths().count(StagingKey(path)) > 0;
}

/// Removes staging orphans (".<name>.staging" in the volume root) older
/// than the GC age. Committed blocks and manifests are never touched —
/// only dot-prefixed staging paths match, and paths registered by a live
/// in-process writer are skipped regardless of age. Returns the number
/// removed.
int64_t RemoveStaleStagingFiles(const std::string& root,
                                const DfsVolumeOptions& options) {
  int64_t removed = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string file = entry.path().filename().string();
    const std::string suffix = ".staging";
    if (file.empty() || file[0] != '.' || file.size() <= suffix.size() ||
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    if (IsLiveStaging(entry.path().string())) continue;
    std::error_code time_ec;
    const auto mtime = fs::last_write_time(entry.path(), time_ec);
    if (time_ec) continue;
    const double age_seconds =
        std::chrono::duration<double>(now - mtime).count();
    if (age_seconds < options.staging_gc_age_seconds) continue;
    if (std::remove(entry.path().string().c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileWriter

DfsVolume::FileWriter::FileWriter(std::string root, DfsVolumeOptions options,
                                  std::string name,
                                  std::shared_ptr<Runtime> runtime)
    : root_(std::move(root)),
      options_(options),
      name_(std::move(name)),
      staging_path_(root_ + "/." + name_ + ".staging"),
      runtime_(std::move(runtime)) {}

DfsVolume::FileWriter::FileWriter(FileWriter&& other) noexcept
    : root_(std::move(other.root_)),
      options_(other.options_),
      name_(std::move(other.name_)),
      staging_path_(std::move(other.staging_path_)),
      staging_(other.staging_),
      pending_(std::move(other.pending_)),
      block_sizes_(std::move(other.block_sizes_)),
      block_crcs_(std::move(other.block_crcs_)),
      total_bytes_(other.total_bytes_),
      committed_(other.committed_),
      runtime_(std::move(other.runtime_)) {
  other.staging_ = nullptr;
  other.committed_ = true;  // moved-from shell owns nothing to discard
}

DfsVolume::FileWriter& DfsVolume::FileWriter::operator=(
    FileWriter&& other) noexcept {
  if (this != &other) {
    Discard();
    root_ = std::move(other.root_);
    options_ = other.options_;
    name_ = std::move(other.name_);
    staging_path_ = std::move(other.staging_path_);
    staging_ = other.staging_;
    pending_ = std::move(other.pending_);
    block_sizes_ = std::move(other.block_sizes_);
    block_crcs_ = std::move(other.block_crcs_);
    total_bytes_ = other.total_bytes_;
    committed_ = other.committed_;
    runtime_ = std::move(other.runtime_);
    other.staging_ = nullptr;
    other.committed_ = true;
  }
  return *this;
}

DfsVolume::FileWriter::~FileWriter() { Discard(); }

void DfsVolume::FileWriter::Discard() {
  if (staging_ != nullptr) {
    std::fclose(staging_);
    staging_ = nullptr;
  }
  if (!committed_ && !staging_path_.empty()) {
    std::remove(staging_path_.c_str());
    UnregisterLiveStaging(staging_path_);
  }
}

Status DfsVolume::FileWriter::EnsureStaging() {
  if (staging_ != nullptr) return Status::OK();
  staging_ = std::fopen(staging_path_.c_str(), "wb");
  if (staging_ == nullptr) {
    return Status::Internal("cannot create staging file " + staging_path_);
  }
  // Shield the file from concurrent staging GC (another query scrubbing
  // or reopening the same volume root) until Commit or Discard.
  RegisterLiveStaging(staging_path_);
  return Status::OK();
}

Status DfsVolume::FileWriter::SealBlock(std::string_view bytes) {
  CASM_RETURN_IF_ERROR(EnsureStaging());
  if (std::fwrite(bytes.data(), 1, bytes.size(), staging_) != bytes.size()) {
    return Status::Internal("short write to staging file " + staging_path_);
  }
  block_sizes_.push_back(static_cast<int64_t>(bytes.size()));
  block_crcs_.push_back(Crc32(bytes));
  return Status::OK();
}

Status DfsVolume::FileWriter::Append(std::string_view bytes) {
  if (committed_) {
    return Status::FailedPrecondition("Append after Commit on '" + name_ +
                                      "'");
  }
  total_bytes_ += static_cast<int64_t>(bytes.size());
  pending_.append(bytes.data(), bytes.size());
  const size_t block = static_cast<size_t>(options_.block_size_bytes);
  while (pending_.size() >= block) {
    CASM_RETURN_IF_ERROR(SealBlock(std::string_view(pending_).substr(0, block)));
    pending_.erase(0, block);
  }
  return Status::OK();
}

Status DfsVolume::FileWriter::Commit() {
  if (committed_) {
    return Status::FailedPrecondition("double Commit on '" + name_ + "'");
  }
  if (!pending_.empty()) {
    CASM_RETURN_IF_ERROR(SealBlock(pending_));
    pending_.clear();
  }
  const int num_blocks = static_cast<int>(block_sizes_.size());
  if (staging_ != nullptr) {
    std::FILE* f = staging_;
    staging_ = nullptr;
    CASM_RETURN_IF_ERROR(SyncAndClose(f, staging_path_));
  }

  const FaultPlan* plan = ResolvedPlan(options_);
  TraceRecorder* trace = ResolvedTrace(options_);
  const bool tracing = trace != nullptr && trace->enabled();
  const double span_start = tracing ? trace->NowSeconds() : 0;
  Runtime* runtime = runtime_.get();

  // Preferred replica placement reuses the table-placement logic: one
  // "row" per block, replicas on distinct nodes, deterministic in (seed,
  // name). Failover below may move replicas off the preferred nodes; the
  // manifest records where each replica actually landed.
  DfsOptions placement_options;
  placement_options.num_nodes = options_.num_nodes;
  placement_options.replication = options_.replication;
  placement_options.block_size_rows = 1;
  placement_options.seed = options_.seed ^ Fnv1a64(name_);
  std::vector<std::vector<int>> preferred(static_cast<size_t>(num_blocks));
  if (num_blocks > 0) {
    CASM_ASSIGN_OR_RETURN(
        DistributedFile placement,
        DistributedFile::Store(num_blocks, placement_options));
    CASM_CHECK_EQ(placement.num_blocks(), num_blocks);
    for (int i = 0; i < num_blocks; ++i) {
      preferred[static_cast<size_t>(i)] = placement.block(i).replicas;
    }
  }

  // Copy each staged block to its replicas. Candidate order per block:
  // healthy preferred nodes, then healthy others (rotating from the node
  // after the first preferred), then suspect preferred, then suspect
  // others; nodes in an outage window are skipped entirely. The write to
  // each candidate retries transient errors with backoff; a candidate
  // that still fails is passed over (failover). The commit fails only
  // when a block cannot be placed on any node at all.
  std::FILE* staged = nullptr;
  if (num_blocks > 0) {
    staged = std::fopen(staging_path_.c_str(), "rb");
    if (staged == nullptr) {
      return Status::Internal("cannot reopen staging file " + staging_path_);
    }
  }
  const int target = std::min(options_.replication, options_.num_nodes);
  std::vector<std::vector<int>> chosen(static_cast<size_t>(num_blocks));
  std::string block_bytes;
  Status status;
  for (int i = 0; i < num_blocks && status.ok(); ++i) {
    block_bytes.resize(
        static_cast<size_t>(block_sizes_[static_cast<size_t>(i)]));
    if (!block_bytes.empty() &&
        std::fread(block_bytes.data(), 1, block_bytes.size(), staged) !=
            block_bytes.size()) {
      status = Status::Internal("short read from staging file " +
                                staging_path_);
      break;
    }
    const std::vector<int>& want = preferred[static_cast<size_t>(i)];
    auto is_preferred = [&want](int n) {
      return std::find(want.begin(), want.end(), n) != want.end();
    };
    auto is_down = [&](int n) { return plan != nullptr && plan->NodeDown(n); };
    auto is_suspect = [&](int n) {
      return runtime != nullptr && runtime->Suspect(n);
    };
    std::vector<int> others;
    const int start = want.empty() ? 0 : (want[0] + 1) % options_.num_nodes;
    for (int k = 0; k < options_.num_nodes; ++k) {
      const int n = (start + k) % options_.num_nodes;
      if (!is_preferred(n)) others.push_back(n);
    }
    std::vector<int> candidates;
    for (int pass = 0; pass < 4; ++pass) {
      const bool want_suspect = pass >= 2;
      const std::vector<int>& pool = (pass % 2 == 0) ? want : others;
      for (int n : pool) {
        if (is_down(n) || is_suspect(n) != want_suspect) continue;
        candidates.push_back(n);
      }
    }
    std::vector<int>& placed = chosen[static_cast<size_t>(i)];
    for (int n : candidates) {
      if (static_cast<int>(placed.size()) >= target) break;
      Status w = WriteReplicaWithRetry(root_, options_, plan, runtime, trace,
                                       name_, i, n, block_bytes);
      if (w.ok()) placed.push_back(n);
    }
    if (placed.empty()) {
      status = Status::Internal("block " + std::to_string(i) + " of '" +
                                name_ + "' could not be placed on any node");
      break;
    }
    for (int n : want) {
      if (std::find(placed.begin(), placed.end(), n) != placed.end()) {
        continue;
      }
      if (runtime != nullptr) {
        runtime->write_failovers.fetch_add(1, std::memory_order_relaxed);
      }
      if (tracing) {
        trace->RecordInstant("dfs", "dfs-failover", i,
                             name_ + " off node " + std::to_string(n));
      }
      ObserveDfsIncident(
          "casm_dfs_write_failovers_total",
          "Blocks whose preferred replica placement failed over to "
          "another node.",
          "dfs-failover", i, name_ + " off node " + std::to_string(n));
    }
    if (static_cast<int>(placed.size()) < target) {
      if (runtime != nullptr) {
        runtime->under_replicated_blocks.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      ObserveDfsIncident(
          "casm_dfs_under_replicated_blocks_total",
          "Blocks committed with fewer replicas than the target.",
          "dfs-under-replicated", i, name_);
    }
  }
  if (staged != nullptr) std::fclose(staged);
  CASM_RETURN_IF_ERROR(status);

  CASM_RETURN_IF_ERROR(PublishManifest(root_, name_, total_bytes_,
                                       options_.block_size_bytes, block_sizes_,
                                       block_crcs_, chosen));
  if (tracing) {
    trace->RecordSpan("dfs", "dfs-write", span_start, trace->NowSeconds(),
                      /*task=*/-1, /*attempt=*/0, TraceOutcome::kNone, name_);
  }

  committed_ = true;
  std::remove(staging_path_.c_str());
  UnregisterLiveStaging(staging_path_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DfsVolume

DfsVolume::DfsVolume(std::string root, DfsVolumeOptions options,
                     std::shared_ptr<Runtime> runtime)
    : root_(std::move(root)),
      options_(options),
      runtime_(std::move(runtime)) {}

DfsVolume::DfsVolume(const DfsVolume&) = default;
DfsVolume& DfsVolume::operator=(const DfsVolume&) = default;
DfsVolume::DfsVolume(DfsVolume&&) noexcept = default;
DfsVolume& DfsVolume::operator=(DfsVolume&&) noexcept = default;
DfsVolume::~DfsVolume() = default;

Result<DfsVolume> DfsVolume::Open(const std::string& root_dir,
                                  const DfsVolumeOptions& options) {
  if (root_dir.empty()) {
    return Status::InvalidArgument("DfsVolume root directory is empty");
  }
  if (options.num_nodes < 1 || options.replication < 1 ||
      options.block_size_bytes < 1) {
    return Status::InvalidArgument("invalid DfsVolumeOptions");
  }
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::Internal("cannot create volume root " + root_dir + ": " +
                            ec.message());
  }
  DfsVolumeOptions clamped = options;
  clamped.replication = std::min(clamped.replication, clamped.num_nodes);
  auto runtime = std::make_shared<Runtime>(clamped.num_nodes);
  runtime->staging_files_removed.fetch_add(
      RemoveStaleStagingFiles(root_dir, clamped), std::memory_order_relaxed);
  return DfsVolume(root_dir, clamped, std::move(runtime));
}

Result<DfsVolume::FileWriter> DfsVolume::CreateFile(
    const std::string& name) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("invalid DFS file name '" + name + "'");
  }
  return FileWriter(root_, options_, name, runtime_);
}

Status DfsVolume::WriteFile(const std::string& name,
                            std::string_view bytes) const {
  CASM_ASSIGN_OR_RETURN(FileWriter writer, CreateFile(name));
  CASM_RETURN_IF_ERROR(writer.Append(bytes));
  return writer.Commit();
}

bool DfsVolume::Exists(const std::string& name) const {
  if (!ValidFileName(name)) return false;
  std::error_code ec;
  return fs::exists(ManifestPath(root_, name), ec);
}

Result<std::string> DfsVolume::ReadFile(const std::string& name,
                                        ReadStats* stats) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("invalid DFS file name '" + name + "'");
  }
  std::error_code ec;
  const std::string manifest_path = ManifestPath(root_, name);
  if (!fs::exists(manifest_path, ec)) {
    return Status::NotFound("no committed file '" + name + "' in " + root_);
  }
  CASM_ASSIGN_OR_RETURN(std::string manifest_text,
                        ReadWholeFile(manifest_path));
  CASM_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(manifest_text, name));

  const FaultPlan* plan = ResolvedPlan(options_);
  TraceRecorder* trace = ResolvedTrace(options_);
  const bool tracing = trace != nullptr && trace->enabled();
  const double span_start = tracing ? trace->NowSeconds() : 0;
  Runtime* runtime = runtime_.get();

  std::string out;
  out.reserve(static_cast<size_t>(manifest.total_bytes));
  for (size_t i = 0; i < manifest.blocks.size(); ++i) {
    const Manifest::Block& block = manifest.blocks[i];
    const int block_index = static_cast<int>(i);
    bool found = false;
    int good_node = -1;
    std::string good_bytes;
    std::vector<int> corrupt_nodes;
    for (int node : block.replicas) {
      if (plan != nullptr && plan->NodeDown(node)) {
        if (stats != nullptr) ++stats->replica_fallbacks;
        continue;
      }
      Result<std::string> bytes = ReadReplicaWithRetry(
          root_, options_, plan, runtime, trace, name, block_index, node);
      if (!bytes.ok()) {
        if (stats != nullptr) ++stats->replica_fallbacks;
        continue;
      }
      if (static_cast<int64_t>(bytes->size()) == block.size &&
          Crc32(*bytes) == block.crc) {
        good_bytes = std::move(*bytes);
        good_node = node;
        found = true;
        break;
      }
      // Bytes present but wrong: rot. Count it, log once per block, and
      // remember the node for repair once a good copy is found.
      corrupt_nodes.push_back(node);
      if (stats != nullptr) {
        ++stats->replica_fallbacks;
        ++stats->corrupt_replicas;
      }
      if (runtime != nullptr) {
        runtime->corrupt_replicas.fetch_add(1, std::memory_order_relaxed);
        runtime->LogCorruptOnce(name, block_index, node);
      }
      ObserveDfsIncident("casm_dfs_corrupt_replicas_total",
                         "Replica reads that failed size/CRC verification.",
                         "dfs-corrupt", block_index,
                         name + " node " + std::to_string(node));
    }
    if (!found) {
      if (tracing) {
        trace->RecordSpan("dfs", "dfs-read", span_start, trace->NowSeconds(),
                          /*task=*/block_index, /*attempt=*/0,
                          TraceOutcome::kFailed, name);
      }
      return Status::Internal("block " + std::to_string(i) + " of '" + name +
                              "' failed checksum on all replicas");
    }
    // Repair-on-read: rewrite the corrupt replicas from the good copy
    // (best effort — the read already succeeded).
    for (int node : corrupt_nodes) {
      Status repaired =
          WriteReplicaWithRetry(root_, options_, plan, runtime, trace, name,
                                block_index, node, good_bytes);
      if (!repaired.ok()) continue;
      if (stats != nullptr) ++stats->repaired_replicas;
      if (runtime != nullptr) {
        runtime->repaired_replicas.fetch_add(1, std::memory_order_relaxed);
      }
      if (tracing) {
        trace->RecordInstant("dfs", "dfs-repair", block_index,
                             name + " node " + std::to_string(node) +
                                 " from node " + std::to_string(good_node));
      }
      ObserveDfsIncident(
          "casm_dfs_repaired_replicas_total",
          "Corrupt or missing replicas rewritten from a good copy.",
          "dfs-repair", block_index,
          name + " node " + std::to_string(node) + " from node " +
              std::to_string(good_node));
    }
    out.append(good_bytes);
    if (stats != nullptr) ++stats->blocks_read;
  }
  if (static_cast<int64_t>(out.size()) != manifest.total_bytes) {
    return Status::Internal("reassembled size mismatch for '" + name + "'");
  }
  if (tracing) {
    trace->RecordSpan("dfs", "dfs-read", span_start, trace->NowSeconds(),
                      /*task=*/-1, /*attempt=*/0, TraceOutcome::kNone, name);
  }
  return out;
}

Status DfsVolume::DeleteFile(const std::string& name) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("invalid DFS file name '" + name + "'");
  }
  // Remove the manifest first: once it is gone the file "does not
  // exist" and leftover blocks are garbage, not a torn file.
  std::remove(ManifestPath(root_, name).c_str());
  std::error_code ec;
  for (int node = 0; node < options_.num_nodes; ++node) {
    const std::string dir = root_ + "/node" + std::to_string(node);
    if (!fs::exists(dir, ec)) continue;
    const std::string prefix = name + ".blk";
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string file = entry.path().filename().string();
      if (file.rfind(prefix, 0) == 0) {
        std::remove(entry.path().string().c_str());
      }
    }
  }
  std::remove((root_ + "/." + name + ".staging").c_str());
  return Status::OK();
}

std::vector<std::string> DfsVolume::ListFiles() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string file = entry.path().filename().string();
    const std::string suffix = ".manifest";
    if (file.size() > suffix.size() &&
        file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
      names.push_back(file.substr(0, file.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<ScrubReport> DfsVolume::Scrub() const {
  const FaultPlan* plan = ResolvedPlan(options_);
  TraceRecorder* trace = ResolvedTrace(options_);
  const bool tracing = trace != nullptr && trace->enabled();
  const double span_start = tracing ? trace->NowSeconds() : 0;
  Runtime* runtime = runtime_.get();

  ScrubReport report;
  report.bad_replicas_per_node.assign(
      static_cast<size_t>(options_.num_nodes), 0);
  report.staging_files_removed = RemoveStaleStagingFiles(root_, options_);
  if (runtime != nullptr) {
    runtime->staging_files_removed.fetch_add(report.staging_files_removed,
                                             std::memory_order_relaxed);
  }
  const int target = std::min(options_.replication, options_.num_nodes);

  for (const std::string& name : ListFiles()) {
    ++report.files_scanned;
    Result<std::string> manifest_text =
        ReadWholeFile(ManifestPath(root_, name));
    if (!manifest_text.ok()) continue;
    Result<Manifest> parsed = ParseManifest(*manifest_text, name);
    if (!parsed.ok()) continue;  // torn manifest = not committed; skip
    const Manifest& manifest = *parsed;

    bool placement_changed = false;
    std::vector<std::vector<int>> new_replicas(manifest.blocks.size());
    std::vector<int64_t> sizes(manifest.blocks.size());
    std::vector<uint32_t> crcs(manifest.blocks.size());
    for (size_t i = 0; i < manifest.blocks.size(); ++i) {
      const Manifest::Block& block = manifest.blocks[i];
      const int block_index = static_cast<int>(i);
      sizes[i] = block.size;
      crcs[i] = block.crc;
      ++report.blocks_checked;

      std::vector<int> healthy;
      std::vector<int> bad;
      std::string good_bytes;
      bool have_good = false;
      for (int node : block.replicas) {
        ++report.replicas_checked;
        const auto count_bad = [&](bool corrupt) {
          (corrupt ? report.replicas_corrupt : report.replicas_missing) += 1;
          if (node >= 0 && node < options_.num_nodes) {
            ++report.bad_replicas_per_node[static_cast<size_t>(node)];
          }
          bad.push_back(node);
        };
        if (plan != nullptr && plan->NodeDown(node)) {
          count_bad(/*corrupt=*/false);
          continue;
        }
        Result<std::string> bytes = ReadReplicaWithRetry(
            root_, options_, plan, runtime, trace, name, block_index, node);
        if (!bytes.ok()) {
          count_bad(/*corrupt=*/false);
          continue;
        }
        if (static_cast<int64_t>(bytes->size()) == block.size &&
            Crc32(*bytes) == block.crc) {
          healthy.push_back(node);
          if (!have_good) {
            good_bytes = std::move(*bytes);
            have_good = true;
          }
        } else {
          count_bad(/*corrupt=*/true);
          if (runtime != nullptr) {
            runtime->corrupt_replicas.fetch_add(1, std::memory_order_relaxed);
            runtime->LogCorruptOnce(name, block_index, node);
          }
          ObserveDfsIncident("casm_dfs_corrupt_replicas_total",
                             "Replica reads that failed size/CRC "
                             "verification.",
                             "dfs-corrupt", block_index,
                             name + " node " + std::to_string(node) +
                                 " (scrub)");
        }
      }
      if (!have_good) {
        ++report.unrecoverable_blocks;
        new_replicas[i] = block.replicas;  // leave the manifest alone
        continue;
      }
      if (static_cast<int>(healthy.size()) < target) {
        ++report.under_replicated_blocks;
      }

      // Repair: rewrite the block's own bad replicas first, then place
      // extra copies on fresh nodes until the target is met.
      std::vector<int> final_nodes = healthy;
      const auto try_place = [&](int node) {
        if (static_cast<int>(final_nodes.size()) >= target) return;
        if (node < 0 || node >= options_.num_nodes) return;
        if (std::find(final_nodes.begin(), final_nodes.end(), node) !=
            final_nodes.end()) {
          return;
        }
        if (plan != nullptr && plan->NodeDown(node)) return;
        Status written =
            WriteReplicaWithRetry(root_, options_, plan, runtime, trace, name,
                                  block_index, node, good_bytes);
        if (!written.ok()) return;
        final_nodes.push_back(node);
        ++report.replicas_rewritten;
        if (runtime != nullptr) {
          runtime->repaired_replicas.fetch_add(1, std::memory_order_relaxed);
        }
        ObserveDfsIncident(
            "casm_dfs_repaired_replicas_total",
            "Corrupt or missing replicas rewritten from a good copy.",
            "dfs-repair", block_index,
            name + " node " + std::to_string(node) + " (scrub)");
      };
      for (int node : bad) try_place(node);
      for (int k = 0; k < options_.num_nodes; ++k) {
        try_place((healthy.front() + 1 + k) % options_.num_nodes);
      }
      // A bad node the repair abandoned keeps a rotten block file around;
      // drop it so it cannot be confused for a replica later.
      for (int node : bad) {
        if (std::find(final_nodes.begin(), final_nodes.end(), node) ==
                final_nodes.end() &&
            !(plan != nullptr && plan->NodeDown(node))) {
          std::remove(BlockPath(root_, node, name, block_index).c_str());
        }
      }
      new_replicas[i] = final_nodes;
      if (final_nodes != block.replicas) placement_changed = true;
    }
    if (placement_changed) {
      CASM_RETURN_IF_ERROR(PublishManifest(
          root_, name, manifest.total_bytes, manifest.block_size, sizes, crcs,
          new_replicas));
    }
  }
  if (tracing) {
    trace->RecordSpan("dfs", "dfs-scrub", span_start, trace->NowSeconds(),
                      /*task=*/-1, /*attempt=*/0, TraceOutcome::kNone,
                      report.ToString());
  }
  return report;
}

DfsVolumeStats DfsVolume::stats() const {
  DfsVolumeStats out;
  if (runtime_ == nullptr) return out;
  out.io_retries = runtime_->io_retries.load(std::memory_order_relaxed);
  out.write_failovers =
      runtime_->write_failovers.load(std::memory_order_relaxed);
  out.corrupt_replicas =
      runtime_->corrupt_replicas.load(std::memory_order_relaxed);
  out.repaired_replicas =
      runtime_->repaired_replicas.load(std::memory_order_relaxed);
  out.under_replicated_blocks =
      runtime_->under_replicated_blocks.load(std::memory_order_relaxed);
  out.nodes_suspected =
      runtime_->nodes_suspected.load(std::memory_order_relaxed);
  out.staging_files_removed =
      runtime_->staging_files_removed.load(std::memory_order_relaxed);
  return out;
}

bool DfsVolume::NodeSuspect(int node) const {
  return runtime_ != nullptr && runtime_->Suspect(node);
}

std::string ScrubReport::ToString() const {
  std::ostringstream os;
  os << "scrub: files=" << files_scanned << " blocks=" << blocks_checked
     << " replicas=" << replicas_checked << " missing=" << replicas_missing
     << " corrupt=" << replicas_corrupt
     << " rewritten=" << replicas_rewritten
     << " under_replicated=" << under_replicated_blocks
     << " unrecoverable=" << unrecoverable_blocks
     << " staging_removed=" << staging_files_removed;
  if (!bad_replicas_per_node.empty()) {
    os << " bad_per_node=[";
    for (size_t i = 0; i < bad_replicas_per_node.size(); ++i) {
      if (i > 0) os << " ";
      os << bad_replicas_per_node[i];
    }
    os << "]";
  }
  return os.str();
}

}  // namespace casm
