file(REMOVE_RECURSE
  "CMakeFiles/fig4b_speedup.dir/fig4b_speedup.cc.o"
  "CMakeFiles/fig4b_speedup.dir/fig4b_speedup.cc.o.d"
  "fig4b_speedup"
  "fig4b_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
