# Empty dependencies file for fig4b_speedup.
# This may be replaced when dependencies are built.
