file(REMOVE_RECURSE
  "CMakeFiles/fig4c_clustering.dir/fig4c_clustering.cc.o"
  "CMakeFiles/fig4c_clustering.dir/fig4c_clustering.cc.o.d"
  "fig4c_clustering"
  "fig4c_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
