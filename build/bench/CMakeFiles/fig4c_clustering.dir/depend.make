# Empty dependencies file for fig4c_clustering.
# This may be replaced when dependencies are built.
