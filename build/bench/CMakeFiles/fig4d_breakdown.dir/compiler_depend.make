# Empty compiler generated dependencies file for fig4d_breakdown.
# This may be replaced when dependencies are built.
