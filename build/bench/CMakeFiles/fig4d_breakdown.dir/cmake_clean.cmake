file(REMOVE_RECURSE
  "CMakeFiles/fig4d_breakdown.dir/fig4d_breakdown.cc.o"
  "CMakeFiles/fig4d_breakdown.dir/fig4d_breakdown.cc.o.d"
  "fig4d_breakdown"
  "fig4d_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
