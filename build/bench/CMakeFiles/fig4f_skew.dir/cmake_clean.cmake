file(REMOVE_RECURSE
  "CMakeFiles/fig4f_skew.dir/fig4f_skew.cc.o"
  "CMakeFiles/fig4f_skew.dir/fig4f_skew.cc.o.d"
  "fig4f_skew"
  "fig4f_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4f_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
