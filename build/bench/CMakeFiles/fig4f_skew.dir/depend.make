# Empty dependencies file for fig4f_skew.
# This may be replaced when dependencies are built.
