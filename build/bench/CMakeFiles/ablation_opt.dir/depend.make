# Empty dependencies file for ablation_opt.
# This may be replaced when dependencies are built.
