file(REMOVE_RECURSE
  "CMakeFiles/fig4a_scaleup.dir/fig4a_scaleup.cc.o"
  "CMakeFiles/fig4a_scaleup.dir/fig4a_scaleup.cc.o.d"
  "fig4a_scaleup"
  "fig4a_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
