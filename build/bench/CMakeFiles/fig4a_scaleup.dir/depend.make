# Empty dependencies file for fig4a_scaleup.
# This may be replaced when dependencies are built.
