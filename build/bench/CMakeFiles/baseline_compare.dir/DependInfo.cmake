
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/baseline_compare.cc" "bench/CMakeFiles/baseline_compare.dir/baseline_compare.cc.o" "gcc" "bench/CMakeFiles/baseline_compare.dir/baseline_compare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/casm_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
