file(REMOVE_RECURSE
  "CMakeFiles/fig4e_earlyagg.dir/fig4e_earlyagg.cc.o"
  "CMakeFiles/fig4e_earlyagg.dir/fig4e_earlyagg.cc.o.d"
  "fig4e_earlyagg"
  "fig4e_earlyagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4e_earlyagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
