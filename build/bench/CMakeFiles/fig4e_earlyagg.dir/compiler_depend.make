# Empty compiler generated dependencies file for fig4e_earlyagg.
# This may be replaced when dependencies are built.
