# Empty compiler generated dependencies file for casm_core.
# This may be replaced when dependencies are built.
