file(REMOVE_RECURSE
  "libcasm_core.a"
)
