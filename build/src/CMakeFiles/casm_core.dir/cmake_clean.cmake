file(REMOVE_RECURSE
  "CMakeFiles/casm_core.dir/core/cost_model.cc.o"
  "CMakeFiles/casm_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/casm_core.dir/core/coverage.cc.o"
  "CMakeFiles/casm_core.dir/core/coverage.cc.o.d"
  "CMakeFiles/casm_core.dir/core/distribution_key.cc.o"
  "CMakeFiles/casm_core.dir/core/distribution_key.cc.o.d"
  "CMakeFiles/casm_core.dir/core/key_derivation.cc.o"
  "CMakeFiles/casm_core.dir/core/key_derivation.cc.o.d"
  "CMakeFiles/casm_core.dir/core/keygen.cc.o"
  "CMakeFiles/casm_core.dir/core/keygen.cc.o.d"
  "CMakeFiles/casm_core.dir/core/multijob_evaluator.cc.o"
  "CMakeFiles/casm_core.dir/core/multijob_evaluator.cc.o.d"
  "CMakeFiles/casm_core.dir/core/optimizer.cc.o"
  "CMakeFiles/casm_core.dir/core/optimizer.cc.o.d"
  "CMakeFiles/casm_core.dir/core/parallel_evaluator.cc.o"
  "CMakeFiles/casm_core.dir/core/parallel_evaluator.cc.o.d"
  "CMakeFiles/casm_core.dir/core/plan.cc.o"
  "CMakeFiles/casm_core.dir/core/plan.cc.o.d"
  "CMakeFiles/casm_core.dir/core/plan_cache.cc.o"
  "CMakeFiles/casm_core.dir/core/plan_cache.cc.o.d"
  "CMakeFiles/casm_core.dir/core/skew.cc.o"
  "CMakeFiles/casm_core.dir/core/skew.cc.o.d"
  "libcasm_core.a"
  "libcasm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
