
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/casm_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/CMakeFiles/casm_core.dir/core/coverage.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/coverage.cc.o.d"
  "/root/repo/src/core/distribution_key.cc" "src/CMakeFiles/casm_core.dir/core/distribution_key.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/distribution_key.cc.o.d"
  "/root/repo/src/core/key_derivation.cc" "src/CMakeFiles/casm_core.dir/core/key_derivation.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/key_derivation.cc.o.d"
  "/root/repo/src/core/keygen.cc" "src/CMakeFiles/casm_core.dir/core/keygen.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/keygen.cc.o.d"
  "/root/repo/src/core/multijob_evaluator.cc" "src/CMakeFiles/casm_core.dir/core/multijob_evaluator.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/multijob_evaluator.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/casm_core.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/parallel_evaluator.cc" "src/CMakeFiles/casm_core.dir/core/parallel_evaluator.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/parallel_evaluator.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/CMakeFiles/casm_core.dir/core/plan.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/plan.cc.o.d"
  "/root/repo/src/core/plan_cache.cc" "src/CMakeFiles/casm_core.dir/core/plan_cache.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/plan_cache.cc.o.d"
  "/root/repo/src/core/skew.cc" "src/CMakeFiles/casm_core.dir/core/skew.cc.o" "gcc" "src/CMakeFiles/casm_core.dir/core/skew.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/casm_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
