file(REMOVE_RECURSE
  "libcasm_local.a"
)
