file(REMOVE_RECURSE
  "CMakeFiles/casm_local.dir/local/derivation.cc.o"
  "CMakeFiles/casm_local.dir/local/derivation.cc.o.d"
  "CMakeFiles/casm_local.dir/local/measure_table.cc.o"
  "CMakeFiles/casm_local.dir/local/measure_table.cc.o.d"
  "CMakeFiles/casm_local.dir/local/reference_evaluator.cc.o"
  "CMakeFiles/casm_local.dir/local/reference_evaluator.cc.o.d"
  "CMakeFiles/casm_local.dir/local/sortscan_evaluator.cc.o"
  "CMakeFiles/casm_local.dir/local/sortscan_evaluator.cc.o.d"
  "libcasm_local.a"
  "libcasm_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
