# Empty dependencies file for casm_local.
# This may be replaced when dependencies are built.
