# Empty dependencies file for casm_measure.
# This may be replaced when dependencies are built.
