
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/aggregate.cc" "src/CMakeFiles/casm_measure.dir/measure/aggregate.cc.o" "gcc" "src/CMakeFiles/casm_measure.dir/measure/aggregate.cc.o.d"
  "/root/repo/src/measure/measure.cc" "src/CMakeFiles/casm_measure.dir/measure/measure.cc.o" "gcc" "src/CMakeFiles/casm_measure.dir/measure/measure.cc.o.d"
  "/root/repo/src/measure/workflow.cc" "src/CMakeFiles/casm_measure.dir/measure/workflow.cc.o" "gcc" "src/CMakeFiles/casm_measure.dir/measure/workflow.cc.o.d"
  "/root/repo/src/measure/workflow_parser.cc" "src/CMakeFiles/casm_measure.dir/measure/workflow_parser.cc.o" "gcc" "src/CMakeFiles/casm_measure.dir/measure/workflow_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/casm_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/casm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
