file(REMOVE_RECURSE
  "CMakeFiles/casm_measure.dir/measure/aggregate.cc.o"
  "CMakeFiles/casm_measure.dir/measure/aggregate.cc.o.d"
  "CMakeFiles/casm_measure.dir/measure/measure.cc.o"
  "CMakeFiles/casm_measure.dir/measure/measure.cc.o.d"
  "CMakeFiles/casm_measure.dir/measure/workflow.cc.o"
  "CMakeFiles/casm_measure.dir/measure/workflow.cc.o.d"
  "CMakeFiles/casm_measure.dir/measure/workflow_parser.cc.o"
  "CMakeFiles/casm_measure.dir/measure/workflow_parser.cc.o.d"
  "libcasm_measure.a"
  "libcasm_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
