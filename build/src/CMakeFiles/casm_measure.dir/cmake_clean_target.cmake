file(REMOVE_RECURSE
  "libcasm_measure.a"
)
