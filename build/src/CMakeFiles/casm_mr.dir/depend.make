# Empty dependencies file for casm_mr.
# This may be replaced when dependencies are built.
