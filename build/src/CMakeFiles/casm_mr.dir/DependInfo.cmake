
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/cluster_model.cc" "src/CMakeFiles/casm_mr.dir/mr/cluster_model.cc.o" "gcc" "src/CMakeFiles/casm_mr.dir/mr/cluster_model.cc.o.d"
  "/root/repo/src/mr/engine.cc" "src/CMakeFiles/casm_mr.dir/mr/engine.cc.o" "gcc" "src/CMakeFiles/casm_mr.dir/mr/engine.cc.o.d"
  "/root/repo/src/mr/external_sort.cc" "src/CMakeFiles/casm_mr.dir/mr/external_sort.cc.o" "gcc" "src/CMakeFiles/casm_mr.dir/mr/external_sort.cc.o.d"
  "/root/repo/src/mr/metrics.cc" "src/CMakeFiles/casm_mr.dir/mr/metrics.cc.o" "gcc" "src/CMakeFiles/casm_mr.dir/mr/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/casm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
