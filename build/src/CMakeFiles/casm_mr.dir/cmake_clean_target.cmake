file(REMOVE_RECURSE
  "libcasm_mr.a"
)
