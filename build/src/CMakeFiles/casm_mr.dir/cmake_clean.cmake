file(REMOVE_RECURSE
  "CMakeFiles/casm_mr.dir/mr/cluster_model.cc.o"
  "CMakeFiles/casm_mr.dir/mr/cluster_model.cc.o.d"
  "CMakeFiles/casm_mr.dir/mr/engine.cc.o"
  "CMakeFiles/casm_mr.dir/mr/engine.cc.o.d"
  "CMakeFiles/casm_mr.dir/mr/external_sort.cc.o"
  "CMakeFiles/casm_mr.dir/mr/external_sort.cc.o.d"
  "CMakeFiles/casm_mr.dir/mr/metrics.cc.o"
  "CMakeFiles/casm_mr.dir/mr/metrics.cc.o.d"
  "libcasm_mr.a"
  "libcasm_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
