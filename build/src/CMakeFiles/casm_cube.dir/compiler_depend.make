# Empty compiler generated dependencies file for casm_cube.
# This may be replaced when dependencies are built.
