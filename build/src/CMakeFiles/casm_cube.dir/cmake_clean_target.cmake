file(REMOVE_RECURSE
  "libcasm_cube.a"
)
