file(REMOVE_RECURSE
  "CMakeFiles/casm_cube.dir/cube/granularity.cc.o"
  "CMakeFiles/casm_cube.dir/cube/granularity.cc.o.d"
  "CMakeFiles/casm_cube.dir/cube/hierarchy.cc.o"
  "CMakeFiles/casm_cube.dir/cube/hierarchy.cc.o.d"
  "CMakeFiles/casm_cube.dir/cube/region.cc.o"
  "CMakeFiles/casm_cube.dir/cube/region.cc.o.d"
  "CMakeFiles/casm_cube.dir/cube/schema.cc.o"
  "CMakeFiles/casm_cube.dir/cube/schema.cc.o.d"
  "libcasm_cube.a"
  "libcasm_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
