# Empty dependencies file for casm_common.
# This may be replaced when dependencies are built.
