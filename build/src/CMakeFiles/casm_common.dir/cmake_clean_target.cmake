file(REMOVE_RECURSE
  "libcasm_common.a"
)
