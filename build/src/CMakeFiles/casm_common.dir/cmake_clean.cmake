file(REMOVE_RECURSE
  "CMakeFiles/casm_common.dir/common/status.cc.o"
  "CMakeFiles/casm_common.dir/common/status.cc.o.d"
  "CMakeFiles/casm_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/casm_common.dir/common/thread_pool.cc.o.d"
  "libcasm_common.a"
  "libcasm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
