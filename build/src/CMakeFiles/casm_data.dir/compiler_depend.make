# Empty compiler generated dependencies file for casm_data.
# This may be replaced when dependencies are built.
