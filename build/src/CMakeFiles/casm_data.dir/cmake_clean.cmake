file(REMOVE_RECURSE
  "CMakeFiles/casm_data.dir/data/generator.cc.o"
  "CMakeFiles/casm_data.dir/data/generator.cc.o.d"
  "CMakeFiles/casm_data.dir/data/table.cc.o"
  "CMakeFiles/casm_data.dir/data/table.cc.o.d"
  "libcasm_data.a"
  "libcasm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
