file(REMOVE_RECURSE
  "libcasm_data.a"
)
