file(REMOVE_RECURSE
  "CMakeFiles/casm_dfs.dir/dfs/dfs.cc.o"
  "CMakeFiles/casm_dfs.dir/dfs/dfs.cc.o.d"
  "libcasm_dfs.a"
  "libcasm_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
