file(REMOVE_RECURSE
  "libcasm_dfs.a"
)
