# Empty compiler generated dependencies file for casm_dfs.
# This may be replaced when dependencies are built.
