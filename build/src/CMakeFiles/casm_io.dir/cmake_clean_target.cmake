file(REMOVE_RECURSE
  "libcasm_io.a"
)
