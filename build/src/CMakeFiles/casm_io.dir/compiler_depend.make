# Empty compiler generated dependencies file for casm_io.
# This may be replaced when dependencies are built.
