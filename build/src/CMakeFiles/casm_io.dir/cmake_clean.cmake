file(REMOVE_RECURSE
  "CMakeFiles/casm_io.dir/io/csv.cc.o"
  "CMakeFiles/casm_io.dir/io/csv.cc.o.d"
  "libcasm_io.a"
  "libcasm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
