file(REMOVE_RECURSE
  "CMakeFiles/casm_queries.dir/queries/paper_data.cc.o"
  "CMakeFiles/casm_queries.dir/queries/paper_data.cc.o.d"
  "CMakeFiles/casm_queries.dir/queries/paper_queries.cc.o"
  "CMakeFiles/casm_queries.dir/queries/paper_queries.cc.o.d"
  "libcasm_queries.a"
  "libcasm_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casm_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
