# Empty dependencies file for casm_queries.
# This may be replaced when dependencies are built.
