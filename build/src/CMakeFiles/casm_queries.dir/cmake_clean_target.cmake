file(REMOVE_RECURSE
  "libcasm_queries.a"
)
