# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/cube_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/local_eval_test[1]_include.cmake")
include("/root/repo/build/tests/mr_engine_test[1]_include.cmake")
include("/root/repo/build/tests/distribution_key_test[1]_include.cmake")
include("/root/repo/build/tests/key_derivation_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_eval_test[1]_include.cmake")
include("/root/repo/build/tests/skew_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/multijob_test[1]_include.cmake")
include("/root/repo/build/tests/plan_cache_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_parser_test[1]_include.cmake")
include("/root/repo/build/tests/external_sort_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/calendar_test[1]_include.cmake")
include("/root/repo/build/tests/multi_window_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/death_test[1]_include.cmake")
