# Empty dependencies file for multijob_test.
# This may be replaced when dependencies are built.
