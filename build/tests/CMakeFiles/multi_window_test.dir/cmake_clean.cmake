file(REMOVE_RECURSE
  "CMakeFiles/multi_window_test.dir/multi_window_test.cc.o"
  "CMakeFiles/multi_window_test.dir/multi_window_test.cc.o.d"
  "multi_window_test"
  "multi_window_test.pdb"
  "multi_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
