# Empty dependencies file for multi_window_test.
# This may be replaced when dependencies are built.
