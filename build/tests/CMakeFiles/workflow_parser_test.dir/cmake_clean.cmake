file(REMOVE_RECURSE
  "CMakeFiles/workflow_parser_test.dir/workflow_parser_test.cc.o"
  "CMakeFiles/workflow_parser_test.dir/workflow_parser_test.cc.o.d"
  "workflow_parser_test"
  "workflow_parser_test.pdb"
  "workflow_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
