# Empty dependencies file for workflow_parser_test.
# This may be replaced when dependencies are built.
