file(REMOVE_RECURSE
  "CMakeFiles/distribution_key_test.dir/distribution_key_test.cc.o"
  "CMakeFiles/distribution_key_test.dir/distribution_key_test.cc.o.d"
  "distribution_key_test"
  "distribution_key_test.pdb"
  "distribution_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
