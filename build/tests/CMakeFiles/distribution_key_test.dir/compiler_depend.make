# Empty compiler generated dependencies file for distribution_key_test.
# This may be replaced when dependencies are built.
