# Empty compiler generated dependencies file for retail_rollup.
# This may be replaced when dependencies are built.
