# Empty dependencies file for ad_ctr_analysis.
# This may be replaced when dependencies are built.
