file(REMOVE_RECURSE
  "CMakeFiles/ad_ctr_analysis.dir/ad_ctr_analysis.cpp.o"
  "CMakeFiles/ad_ctr_analysis.dir/ad_ctr_analysis.cpp.o.d"
  "ad_ctr_analysis"
  "ad_ctr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_ctr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
