# Empty compiler generated dependencies file for ad_ctr_analysis.
# This may be replaced when dependencies are built.
