# Empty compiler generated dependencies file for query_language.
# This may be replaced when dependencies are built.
