#!/usr/bin/env python3
# Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
"""Perf-regression gate: compare fresh bench JSON against committed baselines.

Usage:
    scripts/check_bench.py --baselines bench/baselines --fresh <dir> \
        [--threshold 0.25]

For every ``<name>.json`` under --baselines the same file must exist under
--fresh, and every throughput number the baseline carries must be within
``threshold`` (default 25%) of the baseline value or better. Two formats
are understood, keyed by the file's top-level shape:

* google-benchmark output (``{"benchmarks": [...]}``): entries are matched
  by ``name``; the compared metric is ``items_per_second``.
* CASM figure JSON (``{"rows": [...]}``, written by MaybeWriteJson):
  rows are matched by ``label``; every baseline field whose name ends in
  ``_throughput_rows_per_sec`` or ``_speedup_x`` (the shared-scan
  batching ratio in fig_service) is compared as a floor, and every field
  whose name ends in ``_spilled_bytes``, ``_spilled_records``,
  ``_admission_waits`` (AppendResourceMetrics in bench/bench_util.h) or
  ``_latency_seconds`` (query-service submit-to-done latency) is
  compared as a *ceiling* — the fresh value may not exceed the baseline
  by more than the threshold, so a default-configuration bench that
  silently starts spilling, queueing on the memory budget, or missing
  its latency budget trips CI.

Throughput baselines are deliberately conservative floors (well below the
throughput observed on a warm dev machine), so the gate trips on large,
real regressions — a batch path silently falling back to rows, an
accidental debug build — not on shared-runner noise. A benchmark present
in the baseline but missing from the fresh output fails the gate too:
renaming or deleting a gated benchmark must come with a baseline update.

Exit status: 0 = within budget, 1 = regression or coverage gap.
"""

import argparse
import json
import pathlib
import sys

UPDATE_INSTRUCTIONS = """\
If this slowdown is expected (new workload, intentional trade-off), refresh
the baseline and commit it alongside the change:

    cmake --build build -j --target micro_core fig4a_scaleup
    ./build/bench/micro_core --benchmark_out=/tmp/micro_core.json \\
        --benchmark_out_format=json --benchmark_min_time=0.1
    CASM_BENCH_SCALE=0.05 CASM_BENCH_JSON=/tmp ./build/bench/fig4a_scaleup
    python3 scripts/check_bench.py --reseed /tmp \\
        --baselines bench/baselines   # rewrites floors at 0.35x observed

then commit bench/baselines/*.json with a note in the PR explaining the
regression. Do NOT loosen --threshold instead.
"""

# Reseeded floors sit at this fraction of the observed throughput, so the
# gate (floor * (1 - threshold)) only trips on multi-x regressions even on
# CI runners several times slower than the machine that seeded them.
RESEED_FRACTION = 0.35

# Fields gated as floors (fresh >= baseline * (1-threshold)): raw
# throughput, and dimensionless ratios such as fig_service's
# scan_pass_speedup_x (>1 means shared batching actually shared a scan).
FLOOR_SUFFIXES = ("_throughput_rows_per_sec", "_speedup_x")

# Fields gated as ceilings (fresh <= baseline * (1+threshold)): resource
# counters from AppendResourceMetrics in bench/bench_util.h, plus the
# query-service latency quantiles from fig_service.
CEILING_SUFFIXES = ("_spilled_bytes", "_spilled_records", "_admission_waits",
                    "_latency_seconds")


def _fmt(value):
    """Readable across magnitudes: thousands separators for counters and
    throughputs, decimals for sub-second latencies and speedup ratios."""
    return f"{value:,.0f}" if value >= 100 else f"{value:,.4g}"


def iter_baseline_metrics(doc):
    """Yields (entry_key, metric_name, value, direction) for every gated
    number; direction is "floor" or "ceiling"."""
    if "benchmarks" in doc:
        for bench in doc["benchmarks"]:
            if bench.get("run_type", "iteration") != "iteration":
                continue
            if "items_per_second" in bench:
                yield (bench["name"], "items_per_second",
                       bench["items_per_second"], "floor")
    elif "rows" in doc:
        for row in doc["rows"]:
            for field, value in row.items():
                if field.endswith(FLOOR_SUFFIXES):
                    yield row["label"], field, value, "floor"
                elif field.endswith(CEILING_SUFFIXES):
                    yield row["label"], field, value, "ceiling"


def index_fresh_metrics(doc):
    metrics = {}
    for key, field, value, _direction in iter_baseline_metrics(doc):
        metrics[(key, field)] = value
    return metrics


def check(baseline_dir, fresh_dir, threshold):
    failures = []
    compared = 0
    baseline_files = sorted(baseline_dir.glob("*.json"))
    if not baseline_files:
        failures.append(f"no baselines found under {baseline_dir}")
    for path in baseline_files:
        fresh_path = fresh_dir / path.name
        if not fresh_path.exists():
            failures.append(f"{path.name}: fresh run produced no {fresh_path}")
            continue
        baseline = json.loads(path.read_text())
        fresh = index_fresh_metrics(json.loads(fresh_path.read_text()))
        for key, field, bound, direction in iter_baseline_metrics(baseline):
            got = fresh.get((key, field))
            if got is None:
                failures.append(
                    f"{path.name}: '{key}' [{field}] is in the baseline but "
                    "missing from the fresh run (renamed or deleted?)")
                continue
            compared += 1
            if direction == "floor":
                limit = bound * (1.0 - threshold)
                ok = got >= limit
                verdict = "ok" if ok else "REGRESSION"
                print(f"{verdict:>10}  {path.name}:{key} [{field}] "
                      f"{_fmt(got)} vs floor {_fmt(bound)} "
                      f"(limit {_fmt(limit)})")
                if not ok:
                    failures.append(
                        f"{path.name}: '{key}' [{field}] {_fmt(got)} is "
                        f"more than {threshold:.0%} below the baseline "
                        f"floor {_fmt(bound)}")
            else:
                limit = bound * (1.0 + threshold)
                ok = got <= limit
                verdict = "ok" if ok else "REGRESSION"
                print(f"{verdict:>10}  {path.name}:{key} [{field}] "
                      f"{_fmt(got)} vs ceiling {_fmt(bound)} "
                      f"(limit {_fmt(limit)})")
                if not ok:
                    failures.append(
                        f"{path.name}: '{key}' [{field}] {_fmt(got)} is more "
                        f"than {threshold:.0%} above the baseline ceiling "
                        f"{_fmt(bound)}")
    if compared == 0 and not failures:
        failures.append("baselines contained no throughput metrics")
    return failures


def reseed(fresh_dir, baseline_dir):
    """Rewrites every existing baseline from fresh output: floors at
    RESEED_FRACTION of the observed throughput, ceilings at the observed
    resource count divided by RESEED_FRACTION (the same ~3x headroom,
    in the other direction; an observed zero stays an exact-zero gate).
    Integer-valued metrics stay integers; fractional ones (latency
    seconds, speedup ratios) keep six decimals so a 50ms latency does
    not collapse to a zero ceiling."""
    def reseeded(value, direction):
        scaled = (value * RESEED_FRACTION if direction == "floor"
                  else value / RESEED_FRACTION)
        rounded = round(scaled)
        return rounded if abs(scaled - rounded) < 1e-9 and scaled >= 10 \
            else round(scaled, 6)

    for path in sorted(baseline_dir.glob("*.json")):
        fresh_path = fresh_dir / path.name
        if not fresh_path.exists():
            print(f"skip {path.name}: no fresh {fresh_path}", file=sys.stderr)
            continue
        fresh_doc = json.loads(fresh_path.read_text())
        if "benchmarks" in fresh_doc:
            out = {"_comment": _floor_comment(), "benchmarks": []}
            for key, field, value, direction in \
                    iter_baseline_metrics(fresh_doc):
                out["benchmarks"].append(
                    {"name": key, field: reseeded(value, direction)})
        else:
            rows = {}
            for key, field, value, direction in \
                    iter_baseline_metrics(fresh_doc):
                rows.setdefault(key, {"label": key})[field] = reseeded(
                    value, direction)
            out = {"_comment": _floor_comment(), "rows": list(rows.values())}
        path.write_text(json.dumps(out, indent=2) + "\n")
        print(f"reseeded {path}")


def _floor_comment():
    return (f"Floors at {RESEED_FRACTION:.0%} of a measured run (ceilings "
            "at the inverse), checked by scripts/check_bench.py with a "
            "further 25% allowance. Reseed with: scripts/check_bench.py "
            "--reseed <fresh-json-dir> --baselines bench/baselines")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=pathlib.Path("bench/baselines"))
    parser.add_argument("--fresh", type=pathlib.Path,
                        help="directory holding freshly produced bench JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional drop below the baseline")
    parser.add_argument("--reseed", type=pathlib.Path, metavar="FRESH_DIR",
                        help="rewrite the baselines from this fresh output "
                             "instead of checking")
    args = parser.parse_args()

    if args.reseed:
        reseed(args.reseed, args.baselines)
        return 0
    if not args.fresh:
        parser.error("--fresh is required (or use --reseed)")
    failures = check(args.baselines, args.fresh, args.threshold)
    if failures:
        print("\nPerf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(f"\n{UPDATE_INSTRUCTIONS}", file=sys.stderr)
        return 1
    print("\nPerf-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
