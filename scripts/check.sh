#!/usr/bin/env bash
# Full verification loop: configure, build, run every test, run every
# figure/bench harness. Mirrors what EXPERIMENTS.md's outputs were
# produced with.
#
# A second configuration rebuilds the library and reruns the tier-1 test
# suite under AddressSanitizer (the fault-tolerance substrate retries
# tasks and replays emit buffers — ASan guards the replay paths against
# use-after-free/overflow regressions). Set CASM_SKIP_ASAN=1 to skip it.
#
# A third configuration does the same under ThreadSanitizer (the
# straggler substrate runs concurrent executions of one task with
# cooperative cancellation and an output-ownership race — TSan guards the
# engine's cross-thread handoffs). Set CASM_SKIP_TSAN=1 to skip it.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [ "${CASM_SKIP_ASAN:-0}" != "1" ]; then
  cmake -B build-asan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

if [ "${CASM_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build build-tsan
  ctest --test-dir build-tsan --output-on-failure
fi

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
    echo
  fi
done
