#!/usr/bin/env bash
# Full verification loop: configure, build, run every test, run every
# figure/bench harness. Mirrors what EXPERIMENTS.md's outputs were
# produced with.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $b ====="
    "$b"
    echo
  fi
done
