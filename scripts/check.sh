#!/usr/bin/env bash
# Full verification loop: configure, build, and run every test in one or
# more build configurations, then (full runs only) run every figure/bench
# harness. Mirrors what EXPERIMENTS.md's outputs were produced with, and
# is exactly what CI's matrix invokes — one configuration per job.
#
# Usage:
#   scripts/check.sh                 # all configurations + bench harnesses
#   scripts/check.sh default         # plain build + tests only
#   scripts/check.sh asan tsan       # just the named sanitizer legs
#
# Configurations:
#   default  plain RelWithDebInfo-ish build; the tier-1 gate every PR
#            must keep green.
#   asan     AddressSanitizer: the fault-tolerance substrate retries
#            tasks and replays emit buffers, and the memory budget spills
#            and replays sorted runs — ASan guards those replay paths
#            against use-after-free/overflow regressions.
#   tsan     ThreadSanitizer: speculative execution runs concurrent
#            executions of one task with cooperative cancellation, an
#            output-ownership race, and blocking budget admission, and
#            the multi-query service races submit/cancel/shutdown
#            against its worker pool (svc_test's concurrent stress) —
#            TSan guards the cross-thread handoffs.
#   ubsan    UndefinedBehaviorSanitizer (-fno-sanitize-recover=all, so
#            any hit is a hard failure): guards the hash mixing, flat
#            buffer arithmetic, and byte-accounting overflow paths.
#
# Env knobs (full runs without arguments): CASM_SKIP_ASAN=1,
# CASM_SKIP_TSAN=1, CASM_SKIP_UBSAN=1 skip a leg; CASM_SKIP_BENCH=1
# skips the bench harness loop. ccache is used automatically when
# installed.
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
if [ "$#" -gt 0 ]; then
  configs=("$@")
else
  configs=(default)
  [ "${CASM_SKIP_ASAN:-0}" != "1" ] && configs+=(asan)
  [ "${CASM_SKIP_TSAN:-0}" != "1" ] && configs+=(tsan)
  [ "${CASM_SKIP_UBSAN:-0}" != "1" ] && configs+=(ubsan)
  [ "${CASM_SKIP_BENCH:-0}" != "1" ] && run_bench=1
fi

launcher=()
if command -v ccache >/dev/null 2>&1; then
  launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

build_and_test() {
  local dir=$1
  shift
  cmake -B "$dir" -G Ninja "${launcher[@]}" "$@"
  cmake --build "$dir"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

for config in "${configs[@]}"; do
  echo "===== config: $config ====="
  case "$config" in
    default)
      build_and_test build
      ;;
    asan)
      build_and_test build-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer"
      ;;
    tsan)
      build_and_test build-tsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
      ;;
    ubsan)
      build_and_test build-ubsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
      ;;
    *)
      echo "unknown configuration: $config (want default|asan|tsan|ubsan)" >&2
      exit 2
      ;;
  esac
done

if [ "$run_bench" = "1" ]; then
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
fi
