// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// google-benchmark microbenchmarks for CASM's hot paths: hierarchy
// mapping, region extraction, key generation, partition hashing,
// accumulators, offset conversion, cost-model evaluation, and the local
// sort/scan evaluator.

#include <benchmark/benchmark.h>

#include <string>

#include "agg/local_aggregator.h"
#include "core/cost_model.h"
#include "core/key_derivation.h"
#include "core/keygen.h"
#include "data/generator.h"
#include "data/record_batch.h"
#include "local/sortscan_evaluator.h"
#include "mr/engine.h"
#include "queries/paper_data.h"
#include "measure/workflow_parser.h"
#include "queries/paper_queries.h"

namespace casm {
namespace {

void BM_MapFromFinest(benchmark::State& state) {
  SchemaPtr schema = PaperSchema();
  const Hierarchy& time = schema->attribute(4);
  int64_t v = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(time.MapFromFinest(v, 2));
    v = (v + 977) % time.cardinality();
  }
}
BENCHMARK(BM_MapFromFinest);

void BM_RegionOfRecord(benchmark::State& state) {
  SchemaPtr schema = PaperSchema();
  Table table = PaperUniformTable(1024, 5);
  Workflow wf = MakePaperQuery(PaperQuery::kQ6);
  const Granularity& gran = wf.measure(0).granularity;
  int64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RegionOfRecord(*schema, gran, table.row(row)));
    row = (row + 1) % table.num_rows();
  }
}
BENCHMARK(BM_RegionOfRecord);

void BM_KeyGeneration(benchmark::State& state) {
  SchemaPtr schema = PaperSchema();
  Table table = PaperUniformTable(1024, 6);
  Workflow wf = MakePaperQuery(PaperQuery::kQ6);
  ExecutionPlan plan;
  plan.key = DeriveDistributionKeys(wf).query_key;
  plan.clustering_factor = static_cast<int64_t>(state.range(0));
  std::vector<KeyGenAttr> keygen = BuildKeyGen(*schema, plan);
  std::vector<int64_t> g(6), key(6);
  int64_t row = 0;
  int64_t emitted = 0;
  for (auto _ : state) {
    const int64_t* r = table.row(row);
    for (int a = 0; a < 6; ++a) {
      g[static_cast<size_t>(a)] =
          schema->attribute(a).MapFromFinest(r[a], keygen[static_cast<size_t>(a)].level);
    }
    ForEachBlock(keygen, g, &key, [&](const int64_t* k) {
      benchmark::DoNotOptimize(k[0]);
      ++emitted;
    });
    row = (row + 1) % table.num_rows();
  }
  state.counters["replicas_per_record"] =
      static_cast<double>(emitted) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_KeyGeneration)->Arg(1)->Arg(10)->Arg(100);

void BM_PartitionHash(benchmark::State& state) {
  int64_t key[6] = {1, 2, 3, 4, 5, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionHash(key, 6));
    ++key[3];
  }
}
BENCHMARK(BM_PartitionHash);

void BM_AccumulatorAdd(benchmark::State& state) {
  AggregateFn fn = static_cast<AggregateFn>(state.range(0));
  Accumulator acc(fn);
  double v = 0.5;
  for (auto _ : state) {
    acc.Add(v);
    v += 0.25;
  }
  benchmark::DoNotOptimize(acc.count());
}
BENCHMARK(BM_AccumulatorAdd)
    ->Arg(static_cast<int>(AggregateFn::kSum))
    ->Arg(static_cast<int>(AggregateFn::kAvg))
    ->Arg(static_cast<int>(AggregateFn::kMedian));

void BM_ConvertOffsets(benchmark::State& state) {
  for (auto _ : state) {
    int64_t lo = -600, hi = 600;
    ConvertOffsets(60, 86400, &lo, &hi);
    benchmark::DoNotOptimize(lo);
    benchmark::DoNotOptimize(hi);
  }
}
BENCHMARK(BM_ConvertOffsets);

void BM_OptimalClusteringFactor(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimalClusteringFactor(1000000, 30720, 24, 50, 0));
  }
}
BENCHMARK(BM_OptimalClusteringFactor);

void BM_KeyDerivation(benchmark::State& state) {
  Workflow wf = MakePaperQuery(PaperQuery::kQ6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveDistributionKeys(wf).query_key);
  }
}
BENCHMARK(BM_KeyDerivation);

void BM_SortScanEvaluate(benchmark::State& state) {
  Workflow wf = MakePaperQuery(PaperQuery::kQ5);
  Table table = PaperUniformTable(state.range(0), 3);
  SortScanEvaluator eval(&wf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(table.data().data(),
                                           table.num_rows(), false,
                                           LocalEvalPhase::kFull, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_SortScanEvaluate)->Arg(1000)->Arg(10000);

// Local aggregation engine comparison at a high-cardinality (tier2/hour,
// thousands of distinct groups) grouping — the regime where aggregation
// still collapses rows but one sort of the whole block costs more than
// hashing into group tables, so the morsel/radix engines beat the
// sort/scan baseline and the adaptive chooser must track them. (At
// near-unique cardinality the balance flips back to sort/scan; that end
// of the ladder is bench/fig_localagg's fine rung.)
// The third argument selects the group-by inner loop: -1 forces the
// legacy row-at-a-time path (one RegionOfRecord heap allocation per row
// per measure), 0 the columnar batch path (one transpose + one mapping
// pass per (attribute, level) per batch). Same results either way — the
// pair measures what batching buys.
void BM_LocalAggEvaluate(benchmark::State& state) {
  SchemaPtr schema = PaperSchema();
  WorkflowBuilder b(schema);
  Granularity gran =
      Granularity::Of(*schema, {{"D1", "tier2"}, {"T1", "hour"}}).value();
  b.AddBasic("sum", gran, AggregateFn::kSum, "D2");
  b.AddBasic("cnt", gran, AggregateFn::kCount, "D2");
  b.AddBasic("max", gran, AggregateFn::kMax, "D3");
  Workflow wf = std::move(b).Build().value();
  Table table = PaperUniformTable(state.range(1), 3);
  LocalAggOptions options;
  options.engine = static_cast<LocalAggEngine>(state.range(0));
  options.batch_rows = state.range(2);
  std::unique_ptr<LocalAggregator> agg =
      MakeLocalAggregator(&wf, nullptr, options);
  LocalAggContext ctx;
  ctx.rows = table.data().data();
  ctx.n = table.num_rows();
  LocalEvalStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg->Evaluate(ctx, &stats));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
  state.SetLabel(std::string(LocalAggEngineName(options.engine)) +
                 (options.batch_rows < 0 ? "/row" : "/columnar"));
}
BENCHMARK(BM_LocalAggEvaluate)
    ->Unit(benchmark::kMillisecond)
    ->Args({static_cast<int>(LocalAggEngine::kSortScan), 20000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kMorsel), 20000, -1})
    ->Args({static_cast<int>(LocalAggEngine::kMorsel), 20000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kRadix), 20000, -1})
    ->Args({static_cast<int>(LocalAggEngine::kRadix), 20000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kAdaptive), 20000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kSortScan), 120000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kMorsel), 120000, -1})
    ->Args({static_cast<int>(LocalAggEngine::kMorsel), 120000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kRadix), 120000, -1})
    ->Args({static_cast<int>(LocalAggEngine::kRadix), 120000, 0})
    ->Args({static_cast<int>(LocalAggEngine::kAdaptive), 120000, -1})
    ->Args({static_cast<int>(LocalAggEngine::kAdaptive), 120000, 0});

// The map task's scan kernel, row against columnar: map every attribute
// of each record to its key level. The row path calls MapFromFinest per
// (row, attribute); the columnar path scans the table as RecordBatches
// and maps whole columns with MapFromFinestColumn (level checks hoisted
// out of the loop). Outputs are bit-identical; arg 0 selects the path
// (0 = row, 1 = columnar), arg 1 the row count.
void BM_ScanKeyLevelMap(benchmark::State& state) {
  SchemaPtr schema = PaperSchema();
  Table table = PaperUniformTable(state.range(1), 6);
  Workflow wf = MakePaperQuery(PaperQuery::kQ6);
  ExecutionPlan plan;
  plan.key = DeriveDistributionKeys(wf).query_key;
  std::vector<KeyGenAttr> keygen = BuildKeyGen(*schema, plan);
  const int num_attrs = schema->num_attributes();
  const int64_t n = table.num_rows();
  if (state.range(0) == 0) {
    std::vector<int64_t> g(static_cast<size_t>(num_attrs));
    for (auto _ : state) {
      for (int64_t r = 0; r < n; ++r) {
        const int64_t* row = table.row(r);
        for (int a = 0; a < num_attrs; ++a) {
          g[static_cast<size_t>(a)] = schema->attribute(a).MapFromFinest(
              row[a], keygen[static_cast<size_t>(a)].level);
        }
        benchmark::DoNotOptimize(g.data());
      }
    }
    state.SetLabel("row");
  } else {
    const int64_t cap = kDefaultBatchRows;
    RecordBatch batch(table.row_width(), cap);
    std::vector<std::vector<int64_t>> g_cols(static_cast<size_t>(num_attrs));
    for (auto& col : g_cols) col.resize(static_cast<size_t>(cap));
    for (auto _ : state) {
      TableScan scan = table.Scan(cap);
      while (scan.Next(&batch)) {
        const int64_t bn = batch.num_rows();
        for (int a = 0; a < num_attrs; ++a) {
          schema->attribute(a).MapFromFinestColumn(
              batch.column(a), bn, keygen[static_cast<size_t>(a)].level,
              g_cols[static_cast<size_t>(a)].data());
        }
        benchmark::DoNotOptimize(g_cols.data());
      }
    }
    state.SetLabel("columnar");
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanKeyLevelMap)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 120000})
    ->Args({1, 120000});

// Partition-hash kernel pair: per-key PartitionHash against the
// column-vectorized PartitionHashColumns over a whole batch of keys.
void BM_PartitionHashColumns(benchmark::State& state) {
  const int64_t n = 4096;
  const int width = 6;
  std::vector<std::vector<int64_t>> cols(width);
  std::vector<const int64_t*> col_ptrs(width);
  for (int c = 0; c < width; ++c) {
    cols[static_cast<size_t>(c)].resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      cols[static_cast<size_t>(c)][static_cast<size_t>(i)] = c * 977 + i;
    }
    col_ptrs[static_cast<size_t>(c)] = cols[static_cast<size_t>(c)].data();
  }
  std::vector<uint64_t> out(static_cast<size_t>(n));
  for (auto _ : state) {
    PartitionHashColumns(col_ptrs.data(), width, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionHashColumns);

void BM_ParseWorkflow(benchmark::State& state) {
  SchemaPtr schema = WeblogSchema();
  const char* text = R"(
    M1 := MEDIAN(PageCount)       AT Keyword:word, Time:minute;
    M2 := MEDIAN(AdCount)         AT Keyword:word, Time:hour;
    M3 := M1 / M2                 AT Keyword:word, Time:minute;
    M4 := AVG(M3 OVER Time[-9,0]) AT Keyword:word, Time:minute;
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseWorkflow(schema, text));
  }
}
BENCHMARK(BM_ParseWorkflow);

void BM_GenerateTable(benchmark::State& state) {
  SchemaPtr schema = PaperSchema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateUniformTable(schema, state.range(0), 42));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateTable)->Arg(100000);

}  // namespace
}  // namespace casm

BENCHMARK_MAIN();
