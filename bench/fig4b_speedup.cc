// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(b) — System speed-up: average data processing rate (records per
// modeled second) as mappers/reducers scale, for Q1, Q2 and Q6 over a
// fixed data set. Paper shape: Q1/Q2 scale near linearly with machines;
// Q6 trails off because its coarse-granularity sliding window limits the
// clustering factor and duplicates data across blocks.

#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(b)",
              "processing rate vs #reducers, Q1/Q2/Q6, fixed input");
  const int64_t rows = ScaledRows(300000);
  Table table = PaperUniformTable(rows, 1717);

  // Job startup is excluded from the rate: the paper's multi-minute jobs
  // amortize it, while at bench scale it would mask the scaling shape.
  ClusterCostParams params = ClusterCostParams::Default();
  params.startup_seconds = 0;

  std::printf("%-10s%14s%14s%14s   (records per modeled second)\n",
              "reducers", "Q1", "Q2", "Q6");
  for (int m : {10, 20, 30, 40, 50}) {
    ClusterConfig cluster;
    cluster.num_mappers = m;
    cluster.num_reducers = m;
    std::printf("%-10d", m);
    for (PaperQuery q : {PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ6}) {
      Workflow wf = MakePaperQuery(q);
      RunOutcome outcome = RunQuery(wf, table, cluster);
      const double seconds =
          ModeledResponseSeconds(outcome.result.metrics, m, params);
      std::printf("%14.0f", static_cast<double>(rows) / seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
