// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(d) — Evaluation cost breakdown: cumulative cost of Map-Only
// (fetch + key generation), MR (+ shuffle and framework sort), Sort
// (+ in-reducer local sort) and Sort+Eval (full evaluation). Paper shape:
// Map-Only is cheap (which is what makes run-time sampling viable, §V);
// the MR -> Sort gap is the big one (the duplicated local sort §III-D can
// eliminate); Sort -> Sort+Eval is small (scan evaluation is cheap).

#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "core/key_derivation.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(d)", "cost breakdown: Map-Only / MR / Sort / Sort+Eval");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(300000);
  Table table = PaperUniformTable(rows, 31337);
  Workflow wf = MakePaperQuery(PaperQuery::kQ5);

  OptimizerOptions opts;
  opts.num_reducers = cluster.num_reducers;
  opts.num_records = rows;
  ExecutionPlan plan = OptimizePlan(wf, opts).value();
  std::printf("# plan: %s\n", plan.ToString(*wf.schema()).c_str());

  struct Stage {
    const char* name;
    ParallelEvalPhase phase;
  };
  std::printf("%-12s%14s%16s\n", "stage", "modeled_s", "wall_clock_s");
  for (Stage stage : {Stage{"Map-Only", ParallelEvalPhase::kMapOnly},
                      Stage{"MR", ParallelEvalPhase::kShuffleOnly},
                      Stage{"Sort", ParallelEvalPhase::kLocalSortOnly},
                      Stage{"Sort+Eval", ParallelEvalPhase::kFull}}) {
    RunOutcome outcome = RunPlan(wf, table, plan, cluster, stage.phase);
    // The modeled time of a partial stage counts only the phases it ran.
    const MapReduceMetrics& m = outcome.result.metrics;
    ClusterCostParams params = ClusterCostParams::Default();
    double modeled = params.startup_seconds +
                     static_cast<double>(m.input_rows) /
                         cluster.num_mappers * params.map_seconds_per_record;
    if (stage.phase != ParallelEvalPhase::kMapOnly) {
      double worst = 0;
      for (int64_t pairs : m.reducer_pairs) {
        double p = static_cast<double>(pairs);
        double log2p = p > 2 ? std::log2(p) : 1.0;
        double cost = p * (params.transfer_seconds_per_record +
                           params.sort_seconds_per_record_per_log2 * log2p);
        if (stage.phase == ParallelEvalPhase::kLocalSortOnly ||
            stage.phase == ParallelEvalPhase::kFull) {
          // In-reducer re-sort of each block costs another comparison pass.
          cost += p * params.sort_seconds_per_record_per_log2 * log2p;
        }
        if (stage.phase == ParallelEvalPhase::kFull) {
          cost += p * params.eval_seconds_per_record;
        }
        worst = std::max(worst, cost);
      }
      modeled += worst;
    }
    std::printf("%-12s%14.3f%16.3f\n", stage.name, modeled,
                m.total_seconds);
    std::fflush(stdout);
  }
  std::printf(
      "# combined-sort optimization (§III-D) removes the in-reducer re-sort:\n");
  ExecutionPlan combined = plan;
  combined.combined_sort = true;
  RunOutcome with = RunPlan(wf, table, combined, cluster);
  RunOutcome without = RunPlan(wf, table, plan, cluster);
  std::printf("%-24s local_sort_s=%.3f wall=%.3f\n", "separate sorts",
              without.result.local_stats.sort_seconds,
              without.result.metrics.total_seconds);
  std::printf("%-24s local_sort_s=%.3f wall=%.3f\n", "combined sort",
              with.result.local_stats.sort_seconds,
              with.result.metrics.total_seconds);
  return 0;
}
