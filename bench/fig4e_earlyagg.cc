// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(e) — Effect of early aggregation on DS0-DS2. Paper shape: when
// the basic measures group at a coarse granularity (DS0) the map-side
// reduction is dramatic and early aggregation wins clearly; at an
// intermediate granularity (DS1) the advantage shrinks; at a fine
// granularity (DS2) the mapper-side hash work outweighs the (near-zero)
// size reduction and early aggregation loses.

#include "bench/bench_util.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(e)", "early aggregation vs none, DS0/DS1/DS2");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(400000);
  Table table = PaperUniformTable(rows, 777000);

  std::printf("%-6s%16s%16s%18s%16s\n", "query", "early_agg_s", "no_early_s",
              "shuffle_reduction", "early_wall_s");
  for (PaperQuery q :
       {PaperQuery::kDS0, PaperQuery::kDS1, PaperQuery::kDS2}) {
    Workflow wf = MakePaperQuery(q);
    OptimizerOptions with;
    with.early_aggregation = true;
    OptimizerOptions without;
    RunOutcome early = RunQuery(wf, table, cluster, with);
    RunOutcome plain = RunQuery(wf, table, cluster, without);
    // The modeled time of the early-aggregation run must also pay for the
    // map-side hash aggregation: one extra eval pass over every record per
    // basic measure.
    ClusterCostParams params = ClusterCostParams::Default();
    const double map_side_agg =
        static_cast<double>(table.num_rows()) / cluster.num_mappers *
        params.eval_seconds_per_record *
        static_cast<double>(wf.BasicMeasures().size());
    double early_modeled = early.modeled_seconds + map_side_agg;
    std::printf("%-6s%16.3f%16.3f%17.1f%%%16.3f\n", PaperQueryName(q),
                early_modeled, plain.modeled_seconds,
                100.0 * (1.0 - static_cast<double>(
                                   early.result.metrics.emitted_pairs) /
                                   static_cast<double>(
                                       plain.result.metrics.emitted_pairs)),
                early.result.metrics.total_seconds);
    std::fflush(stdout);
  }
  return 0;
}
