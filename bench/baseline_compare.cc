// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// The paper's motivating comparison (§I): evaluating a composite subset
// measure query component-at-a-time — one MapReduce job per measure, raw
// data repartitioned once per basic measure, intermediates joined — versus
// the paper's strategy of a single (possibly overlapping) redistribution
// with all aggregation local to each block. Reports shuffle volume, job
// counts and modeled cluster response time (the baseline pays the per-job
// startup and the extra shuffles).

#include "bench/bench_util.h"
#include "core/multijob_evaluator.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Baseline comparison",
              "single redistribution (this paper) vs per-component jobs");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(200000);
  Table table = PaperUniformTable(rows, 2024);

  std::printf("%-6s%10s%16s%14s%16s%14s%12s\n", "query", "jobs",
              "base_shuffle", "base_s", "casm_shuffle", "casm_s",
              "speedup");
  for (PaperQuery q :
       {PaperQuery::kQ2, PaperQuery::kQ3, PaperQuery::kQ4, PaperQuery::kQ5,
        PaperQuery::kQ6}) {
    Workflow wf = MakePaperQuery(q);

    ParallelEvalOptions eval;
    eval.num_mappers = cluster.num_mappers;
    eval.num_reducers = cluster.num_reducers;
    Result<MultiJobResult> baseline = EvaluateMultiJob(wf, table, eval);
    CASM_CHECK(baseline.ok()) << baseline.status().ToString();
    // Modeled: each job pays startup + its map + its worst reducer. Jobs
    // run back to back, so sum per-job models. total_metrics accumulated
    // per-reducer loads across jobs; approximate per-job response with the
    // aggregate workload treated as one pipeline plus per-job startup.
    ClusterCostParams params = ClusterCostParams::Default();
    double baseline_seconds =
        ModeledResponseSeconds(baseline->total_metrics, cluster.num_mappers,
                               params) +
        params.startup_seconds * (baseline->jobs - 1);

    RunOutcome casm_run = RunQuery(wf, table, cluster);
    const double speedup = baseline_seconds / casm_run.modeled_seconds;
    std::printf("%-6s%10d%16lld%14.3f%16lld%14.3f%11.2fx\n",
                PaperQueryName(q), baseline->jobs,
                static_cast<long long>(baseline->total_metrics.emitted_pairs),
                baseline_seconds,
                static_cast<long long>(casm_run.result.metrics.emitted_pairs),
                casm_run.modeled_seconds, speedup);
    std::fflush(stdout);
  }
  return 0;
}
