// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Ablations for the design choices DESIGN.md calls out:
//   A. replication accounting: measured duplication vs the analytic
//      (d + cf) / cf across clustering factors;
//   B. candidate distribution keys: predicted vs sampled max reducer load
//      for every candidate the optimizer enumerates;
//   C. local evaluation: sort/scan streaming vs hash fallback (how many
//      basic measures the chosen sort order streams per query);
//   D. cost-model accuracy: analytic expected max load vs Monte-Carlo.

#include <algorithm>

#include "bench/bench_util.h"
#include "core/cost_model.h"
#include "core/key_derivation.h"
#include "core/skew.h"
#include "local/sortscan_evaluator.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Ablations", "replication, candidate keys, sort order, model");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(200000);
  Table table = PaperUniformTable(rows, 11);

  // --- A: replication vs (d + cf) / cf.
  std::printf("\n[A] replication factor vs clustering (Q6, d=24)\n");
  std::printf("%-8s%14s%14s\n", "cf", "measured", "(d+cf)/cf");
  Workflow q6 = MakePaperQuery(PaperQuery::kQ6);
  ExecutionPlan plan;
  plan.key = DeriveDistributionKeys(q6).query_key;
  const int64_t d = plan.AnnotationWidth();
  for (int64_t cf : {1, 4, 12, 24, 48}) {
    plan.clustering_factor = cf;
    RunOutcome outcome = RunPlan(q6, table, plan, cluster);
    std::printf("%-8lld%14.3f%14.3f\n", static_cast<long long>(cf),
                outcome.result.metrics.ReplicationFactor(),
                static_cast<double>(d + cf) / static_cast<double>(cf));
    std::fflush(stdout);
  }

  // --- B: candidate keys, predicted vs simulated-dispatch max load.
  std::printf("\n[B] candidate plans (Q6): predicted vs sampled max load\n");
  OptimizerOptions opts;
  opts.num_reducers = cluster.num_reducers;
  opts.num_records = rows;
  std::vector<ExecutionPlan> candidates = CandidatePlans(q6, opts).value();
  SamplingOptions so;
  so.sample_fraction = 0.2;
  for (const ExecutionPlan& candidate : candidates) {
    std::vector<int64_t> loads =
        SimulateDispatch(q6, table, candidate, cluster.num_reducers, so);
    int64_t sampled_max = *std::max_element(loads.begin(), loads.end());
    std::printf("  %-52s predicted=%9.0f sampled=%9lld\n",
                candidate.ToString(*q6.schema()).c_str(),
                candidate.predicted_max_load,
                static_cast<long long>(sampled_max));
  }

  // --- C: sort/scan plan quality per paper query.
  std::printf("\n[C] sort/scan evaluator: streamed basic measures per query\n");
  for (PaperQuery q : AllPaperQueries()) {
    Workflow wf = MakePaperQuery(q);
    SortScanEvaluator eval(&wf);
    std::printf("  %-4s streams %d of %zu basic measures\n",
                PaperQueryName(q), eval.num_streamed(),
                wf.BasicMeasures().size());
  }

  // --- D: analytic vs Monte-Carlo expected max load.
  std::printf("\n[D] cost model vs Monte-Carlo (W=1e6 records)\n");
  std::printf("%-10s%-10s%14s%14s\n", "reducers", "blocks", "analytic",
              "monte_carlo");
  for (int m : {10, 50, 200}) {
    for (int64_t blocks : {500, 5000, 50000}) {
      double analytic = ExpectedMaxReducerLoad(1e6, blocks, m);
      double mc = SimulatedMaxReducerLoad(1e6, blocks, m, 200, 99);
      std::printf("%-10d%-10lld%14.0f%14.0f\n", m,
                  static_cast<long long>(blocks), analytic, mc);
    }
  }
  return 0;
}
