// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Multi-query service benchmark: latency under concurrent offered load,
// with shared-scan batching on vs off.
//
// Part 1 (deterministic): k compatible paper queries are queued against a
// paused service and released at once, so the batching worker folds them
// into one shared scan. The run self-checks: every query's results must
// be BIT-IDENTICAL (tolerance 0.0) to a solo EvaluateParallel of its
// workflow under the very plan the service executed, and the number of
// scan passes must be strictly below the query count — sharing must
// actually share.
//
// Part 2 (offered load): a seeded Zipf query mix arrives as a Poisson
// process (bench/workload.h) at increasing rates; the service absorbs it
// with shared batching off, then on. Reported per level: p50/p99
// submit-to-done latency, scan passes, shared batches formed. The JSON
// feeds scripts/check_bench.py — latency fields are regression ceilings,
// the scan-pass speedup is a floor.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload.h"
#include "data/generator.h"
#include "svc/query_service.h"

namespace casm {
namespace {

using bench::JsonRow;
using bench::MakeWorkload;
using bench::WorkloadItem;
using bench::WorkloadOptions;

struct ServiceFixture {
  SchemaPtr schema;
  Table table;
  std::vector<Workflow> workflows;  // Q1..Q6, all on `schema`

  explicit ServiceFixture(int64_t rows)
      : schema(PaperSchema()),
        table(GenerateUniformTable(schema, rows, /*seed=*/7)) {
    for (PaperQuery q : {PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ3,
                         PaperQuery::kQ4, PaperQuery::kQ5, PaperQuery::kQ6}) {
      workflows.push_back(MakePaperQuery(q, schema));
    }
  }
};

QueryServiceOptions BaseOptions() {
  QueryServiceOptions options;
  options.num_workers = 2;
  options.num_mappers = 4;
  options.num_reducers = 4;
  options.num_threads = 2;
  return options;
}

/// Re-runs `wf` solo under the exact plan the service executed and fails
/// loudly unless the results match bit-for-bit.
void SelfCheckOutcome(const Workflow& wf, const Table& table,
                      const QueryOutcome& outcome,
                      const QueryServiceOptions& service_options) {
  ParallelEvalOptions eval;
  eval.num_mappers = service_options.num_mappers;
  eval.num_reducers = service_options.num_reducers;
  eval.num_threads = service_options.num_threads;
  eval.columnar = service_options.columnar;
  eval.local_agg = service_options.local_agg;
  Result<ParallelEvalResult> solo =
      EvaluateParallel(wf, table, outcome.plan, eval);
  CASM_CHECK(solo.ok()) << solo.status().ToString();
  const Status same =
      CompareResultSets(solo.value().results, outcome.results,
                        /*tolerance=*/0.0);
  CASM_CHECK(same.ok()) << "shared result diverged from solo: "
                        << same.ToString();
}

/// Part 1: burst of k compatible queries -> one shared scan, bit-identical
/// fan-out.
JsonRow RunSharedBurst(const ServiceFixture& fixture, int k) {
  QueryServiceOptions options = BaseOptions();
  options.num_workers = 1;  // deterministic batch formation
  options.start_paused = true;
  options.shared_batching = true;
  options.max_batch_queries = k;
  options.batch_window_seconds = 0.05;
  QueryService service(options);

  std::vector<QueryService::QueryId> ids;
  for (int i = 0; i < k; ++i) {
    QueryRequest request;
    request.workflow =
        &fixture.workflows[static_cast<size_t>(i) % fixture.workflows.size()];
    request.table = &fixture.table;
    Result<QueryService::QueryId> id = service.Submit(request);
    CASM_CHECK(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  service.Start();

  double max_latency = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    Result<QueryOutcome> outcome = service.Wait(ids[i]);
    CASM_CHECK(outcome.ok()) << outcome.status().ToString();
    CASM_CHECK(outcome.value().state == QueryState::kDone)
        << QueryStateName(outcome.value().state) << ": "
        << outcome.value().status.ToString();
    SelfCheckOutcome(fixture.workflows[i % fixture.workflows.size()],
                     fixture.table, outcome.value(), options);
    max_latency = std::max(
        max_latency,
        outcome.value().queue_seconds + outcome.value().run_seconds);
  }
  const QueryServiceStats stats = service.stats();
  CASM_CHECK(stats.scan_passes < k)
      << "shared batching did not reduce scan passes: " << stats.scan_passes
      << " passes for " << k << " queries";
  std::printf(
      "shared burst k=%d: %lld scan pass(es), %lld shared batch(es), "
      "speedup %.2fx, results bit-identical to solo\n",
      k, static_cast<long long>(stats.scan_passes),
      static_cast<long long>(stats.shared_batches),
      static_cast<double>(k) / static_cast<double>(stats.scan_passes));

  JsonRow row;
  row.label = "shared_burst_k" + std::to_string(k);
  row.fields.emplace_back("queries", static_cast<double>(k));
  row.fields.emplace_back("scan_passes",
                          static_cast<double>(stats.scan_passes));
  row.fields.emplace_back("shared_batches",
                          static_cast<double>(stats.shared_batches));
  row.fields.emplace_back(
      "scan_pass_speedup_x",
      static_cast<double>(k) / static_cast<double>(stats.scan_passes));
  row.fields.emplace_back("max_latency_seconds", max_latency);
  return row;
}

/// Part 2: Poisson offered load at `arrivals_per_second`, shared on/off.
JsonRow RunOfferedLoad(const ServiceFixture& fixture, double load,
                       int num_queries, bool shared) {
  QueryServiceOptions options = BaseOptions();
  options.shared_batching = shared;
  options.batch_window_seconds = 0.01;
  QueryService service(options);

  WorkloadOptions wopt;
  wopt.seed = 0x5eed + static_cast<uint64_t>(load);
  wopt.num_queries = num_queries;
  wopt.zipf_s = 1.0;
  wopt.arrivals_per_second = load;
  wopt.high_priority_every = 4;
  const std::vector<WorkloadItem> items = MakeWorkload(wopt);

  const auto start = std::chrono::steady_clock::now();
  std::vector<QueryService::QueryId> ids;
  for (const WorkloadItem& item : items) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(item.arrival_seconds)));
    QueryRequest request;
    request.workflow =
        &fixture.workflows[static_cast<size_t>(item.template_index)];
    request.table = &fixture.table;
    request.priority = item.priority;
    Result<QueryService::QueryId> id = service.Submit(request);
    CASM_CHECK(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  for (QueryService::QueryId id : ids) {
    Result<QueryOutcome> outcome = service.Wait(id);
    CASM_CHECK(outcome.ok()) << outcome.status().ToString();
    CASM_CHECK(outcome.value().state == QueryState::kDone)
        << QueryStateName(outcome.value().state) << ": "
        << outcome.value().status.ToString();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const QueryServiceStats stats = service.stats();
  const double p50 = stats.latency_seconds.Quantile(0.5);
  const double p99 = stats.latency_seconds.Quantile(0.99);
  std::printf(
      "load=%.0f/s shared=%s: %d queries in %.2fs, p50=%.3fs p99=%.3fs, "
      "%lld scan pass(es), %lld shared batch(es)\n",
      load, shared ? "on" : "off", num_queries, wall, p50, p99,
      static_cast<long long>(stats.scan_passes),
      static_cast<long long>(stats.shared_batches));

  JsonRow row;
  row.label = "load" + std::to_string(static_cast<int>(load)) + "_shared_" +
              (shared ? "on" : "off");
  row.fields.emplace_back("offered_load_per_sec", load);
  row.fields.emplace_back("queries", static_cast<double>(num_queries));
  row.fields.emplace_back("p50_latency_seconds", p50);
  row.fields.emplace_back("p99_latency_seconds", p99);
  row.fields.emplace_back("scan_passes",
                          static_cast<double>(stats.scan_passes));
  row.fields.emplace_back("shared_batches",
                          static_cast<double>(stats.shared_batches));
  row.fields.emplace_back("shared_queries",
                          static_cast<double>(stats.shared_queries));
  return row;
}

int Main() {
  bench::PrintHeader("fig_service",
                     "multi-query service: shared-scan batching and "
                     "latency under offered load");
  const int64_t rows = bench::ScaledRows(20000);
  ServiceFixture fixture(rows);
  std::printf("# table: %lld rows\n", static_cast<long long>(rows));

  std::vector<JsonRow> json;
  for (int k : {2, 4, 6}) {
    json.push_back(RunSharedBurst(fixture, k));
  }
  const int num_queries =
      std::max(8, static_cast<int>(12 * std::min(bench::Scale(), 4.0)));
  for (bool shared : {false, true}) {
    for (double load : {16.0, 48.0}) {
      json.push_back(RunOfferedLoad(fixture, load, num_queries, shared));
    }
  }
  bench::MaybeWriteJson("fig_service", json);
  return 0;
}

}  // namespace
}  // namespace casm

int main() { return casm::Main(); }
