// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Local aggregation engine ladder: evaluates one reducer-sized block with
// each group-by engine (sortscan / morsel / radix) and with the adaptive
// chooser, across a cardinality ladder (day/tier3 -> hour/tier2 ->
// minute/value grouping) crossed with uniform and temporally skewed data.
// The engines must produce identical results on every point (checked
// in-process against the reference evaluator; a mismatch aborts), so the
// ladder only measures speed — and the adaptive row should track the best
// single engine within a few percent everywhere, which is the subsystem's
// acceptance bar.
//
// JSON (CASM_BENCH_JSON): one row per (point, engine) with the block's
// row count, the best-of-reps wall seconds, and the per-engine block
// counters — for the adaptive rows the counters record WHICH engine the
// chooser dispatched (exactly one of localagg_sortscan/morsel/radix is 1).

#include <memory>
#include <thread>
#include <vector>

#include "agg/local_aggregator.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "local/reference_evaluator.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("local aggregation ladder",
              "group-by engines vs adaptive chooser, cardinality x skew");
  const int64_t rows = ScaledRows(120000);
  const int reps = 3;
  const int threads = std::max(
      2, std::min(8, static_cast<int>(std::thread::hardware_concurrency())));
  ThreadPool pool(threads);
  std::printf("# block=%lld rows, pool=%d threads, best of %d reps\n",
              static_cast<long long>(rows), threads, reps);

  SchemaPtr schema = PaperSchema();
  struct Rung {
    const char* name;
    const char* d_level;
    const char* t_level;
  };
  const Rung rungs[] = {{"coarse", "tier3", "day"},
                        {"mid", "tier2", "hour"},
                        {"fine", "value", "minute"}};
  const LocalAggEngine engines[] = {
      LocalAggEngine::kSortScan, LocalAggEngine::kMorsel,
      LocalAggEngine::kRadix, LocalAggEngine::kAdaptive};

  std::vector<JsonRow> json;
  std::printf("%-18s%12s%12s%12s%12s%12s\n", "point", "sortscan_s", "morsel_s",
              "radix_s", "adaptive_s", "chosen");
  for (const Rung& rung : rungs) {
    WorkflowBuilder b(schema);
    Granularity gran =
        Granularity::Of(*schema, {{"D1", rung.d_level}, {"T1", rung.t_level}})
            .value();
    b.AddBasic("sum", gran, AggregateFn::kSum, "D2");
    b.AddBasic("cnt", gran, AggregateFn::kCount, "D2");
    b.AddBasic("max", gran, AggregateFn::kMax, "D3");
    Result<Workflow> built = std::move(b).Build();
    CASM_CHECK(built.ok()) << built.status().ToString();
    const Workflow wf = std::move(built).value();

    for (bool skewed : {false, true}) {
      Table table = skewed ? PaperSkewedTable(rows, 4242)
                           : PaperUniformTable(rows, 1717);
      const MeasureResultSet expected = EvaluateReference(wf, table);
      const std::string point =
          std::string(rung.name) + (skewed ? "_skewed" : "_uniform");

      double seconds[4] = {0, 0, 0, 0};
      std::string chosen = "-";
      for (int e = 0; e < 4; ++e) {
        LocalAggOptions options;
        options.engine = engines[e];
        std::unique_ptr<LocalAggregator> agg =
            MakeLocalAggregator(&wf, nullptr, options);
        LocalAggContext ctx;
        ctx.rows = table.data().data();
        ctx.n = table.num_rows();
        ctx.pool = &pool;

        double best = 0;
        LocalEvalStats stats;
        for (int rep = 0; rep < reps; ++rep) {
          LocalEvalStats rep_stats;
          const auto start = std::chrono::steady_clock::now();
          MeasureResultSet got = agg->Evaluate(ctx, &rep_stats);
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          if (rep == 0 || elapsed < best) {
            best = elapsed;
            stats = rep_stats;
          }
          // Engine-identical results on every point: a silent divergence
          // would make the speed comparison meaningless.
          Status match = CompareResultSets(expected, got, 1e-7);
          CASM_CHECK(match.ok())
              << point << " engine=" << LocalAggEngineName(engines[e])
              << ": " << match.ToString();
        }
        seconds[e] = best;
        if (engines[e] == LocalAggEngine::kAdaptive) {
          chosen = stats.agg_blocks_radix > 0    ? "radix"
                   : stats.agg_blocks_morsel > 0 ? "morsel"
                                                 : "sortscan";
        }
        JsonRow row;
        row.label = point + "/" + LocalAggEngineName(engines[e]);
        row.fields.emplace_back("rows", static_cast<double>(rows));
        row.fields.emplace_back("seconds", best);
        row.fields.emplace_back("localagg_sortscan",
                                static_cast<double>(stats.agg_blocks_sortscan));
        row.fields.emplace_back("localagg_morsel",
                                static_cast<double>(stats.agg_blocks_morsel));
        row.fields.emplace_back("localagg_radix",
                                static_cast<double>(stats.agg_blocks_radix));
        row.fields.emplace_back("sampled_rows",
                                static_cast<double>(stats.agg_sampled_rows));
        json.push_back(std::move(row));
      }
      std::printf("%-18s%12.4f%12.4f%12.4f%12.4f%12s\n", point.c_str(),
                  seconds[0], seconds[1], seconds[2], seconds[3],
                  chosen.c_str());
      std::fflush(stdout);
    }
  }
  MaybeWriteJson("fig_localagg", json);
  return 0;
}
