// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Memory-budget ladder experiment (beyond the paper's figures, probing
// the substrate discipline its evaluation relies on: the framework never
// runs a task whose working set it cannot hold, §III-A/§VI). The same
// query runs three times:
//
//   unbounded — no budget: the run's peak tracked bytes are measured
//               (emitter buffers plus reduce-task footprints);
//   1/2       — budget set to half the unbounded peak;
//   1/8       — budget set to an eighth of the unbounded peak: emitters
//               spill sorted runs to disk and task launches queue for
//               admission, yet the query result is unchanged.
//
// Self-checks (always on): every budgeted run's peak_tracked_bytes stays
// within its budget, its results are identical to the unbounded run's,
// and the tightest rung actually exercised the machinery
// (emitter_spilled_runs > 0, admission_waits > 0).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Memory budget ladder",
              "bounded peak tracked bytes, identical results");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(300000);
  Workflow wf = MakePaperQuery(PaperQuery::kQ3);
  Table table = PaperUniformTable(rows, 707);

  OptimizerOptions opts;
  opts.num_reducers = cluster.num_reducers;
  opts.num_records = table.num_rows();
  ExecutionPlan plan = OptimizePlan(wf, opts).value();

  ParallelEvalOptions base;
  base.num_mappers = cluster.num_mappers;
  base.num_reducers = cluster.num_reducers;
  // A fixed worker count keeps the admission-contention pattern (and so
  // the spill/wait counters) comparable across machines.
  base.num_threads = 8;

  // ---- unbounded reference run: measure the peak.
  Result<ParallelEvalResult> unbounded =
      EvaluateParallel(wf, table, plan, base);
  CASM_CHECK(unbounded.ok()) << unbounded.status().ToString();
  const MapReduceMetrics& free_metrics = unbounded.value().metrics;
  const int64_t peak = free_metrics.peak_tracked_bytes;
  CASM_CHECK_GT(peak, 0);
  CASM_CHECK_EQ(free_metrics.emitter_spilled_runs, 0);
  CASM_CHECK_EQ(free_metrics.admission_waits, 0);

  struct Rung {
    const char* label;
    int64_t budget;
    MapReduceMetrics metrics;
    bool tight;  // the rung that must show spills + admission waits
  };
  Rung ladder[] = {{"budget = peak/2", peak / 2, {}, false},
                   {"budget = peak/8", peak / 8, {}, true}};

  for (Rung& rung : ladder) {
    ParallelEvalOptions budgeted = base;
    budgeted.memory_budget_bytes = rung.budget;
    Result<ParallelEvalResult> run =
        EvaluateParallel(wf, table, plan, budgeted);
    CASM_CHECK(run.ok()) << rung.label << ": " << run.status().ToString();
    rung.metrics = run.value().metrics;
    // The acceptance bar: the budget held, and neither spilling nor
    // admission queueing perturbed the query result.
    CASM_CHECK_LE(rung.metrics.peak_tracked_bytes, rung.budget)
        << rung.label;
    Status identical = CompareResultSets(unbounded.value().results,
                                         run.value().results, 0.0);
    CASM_CHECK(identical.ok()) << rung.label << ": " << identical.ToString();
    if (rung.tight) {
      CASM_CHECK_GT(rung.metrics.emitter_spilled_runs, 0);
      CASM_CHECK_GT(rung.metrics.admission_waits, 0);
    }
  }

  std::printf("%-18s%14s%14s%10s%12s%10s%10s\n", "run", "budget B",
              "peak B", "spills", "spilled rec", "adm waits", "wall s");
  auto print_row = [](const char* label, int64_t budget,
                      const MapReduceMetrics& m) {
    std::printf("%-18s%14lld%14lld%10lld%12lld%10lld%10.3f\n", label,
                static_cast<long long>(budget),
                static_cast<long long>(m.peak_tracked_bytes),
                static_cast<long long>(m.emitter_spilled_runs),
                static_cast<long long>(m.emitter_spilled_records),
                static_cast<long long>(m.admission_waits), m.total_seconds);
  };
  print_row("unbounded", 0, free_metrics);
  for (const Rung& rung : ladder) {
    print_row(rung.label, rung.budget, rung.metrics);
  }
  std::printf("# self-check ok: budgets held, results identical, tightest "
              "rung spilled and queued\n");

  std::vector<JsonRow> json;
  auto json_row = [](const char* label, int64_t budget,
                     const MapReduceMetrics& m) {
    JsonRow row{label,
                   {{"budget_bytes", static_cast<double>(budget)},
                    {"peak_tracked_bytes",
                     static_cast<double>(m.peak_tracked_bytes)},
                    {"emitter_spilled_runs",
                     static_cast<double>(m.emitter_spilled_runs)},
                    {"emitter_spilled_records",
                     static_cast<double>(m.emitter_spilled_records)},
                    {"admission_waits",
                     static_cast<double>(m.admission_waits)},
                    {"admission_wait_seconds", m.admission_wait_seconds},
                    {"total_seconds", m.total_seconds}}};
    AppendAttemptHistogram(m, &row);
    return row;
  };
  json.push_back(json_row("unbounded", 0, free_metrics));
  for (const Rung& rung : ladder) {
    json.push_back(json_row(rung.label, rung.budget, rung.metrics));
  }
  MaybeWriteJson("fig_memory", json);
  return 0;
}
