// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(f) — Handling data skew: the unmodified optimizer plan
// ("Normal"), plans enforcing a minimum number of *estimated* blocks per
// reducer ("2Blocks", "4Blocks", §V heuristic), and run-time sampling with
// simulated dispatch ("Sampling"), each on uniform ("No-Skew") and
// temporally skewed ("Skew") data. Paper shape: the lower-bound heuristics
// help under skew; the conservative one (4Blocks) picks plans with too
// much overlap and loses when there is no skew; sampling finds the best
// plan in both cases at a small cost.
//
// The paper does not specify Fig 4(f)'s query; we use a coarse
// day-granularity sliding-window workflow whose plan space makes the
// block-count heuristics meaningful at bench scale (see EXPERIMENTS.md).

#include <chrono>

#include "bench/bench_util.h"
#include "core/key_derivation.h"
#include "core/skew.h"

namespace {

casm::Workflow SkewWorkflow() {
  using namespace casm;
  SchemaPtr schema = PaperSchema();
  WorkflowBuilder b(schema);
  Granularity daily =
      Granularity::Of(*schema, {{"D1", "tier2"}, {"T1", "day"}}).value();
  int m1 = b.AddBasic("daily", daily, AggregateFn::kSum, "D2");
  b.AddSourceAggregate("trailing", daily, AggregateFn::kAvg,
                       {b.Sibling(m1, "T1", -1, 0)});
  return std::move(b).Build().value();
}

}  // namespace

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(f)", "skew handling: Normal/2Blocks/4Blocks/Sampling");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(300000);
  Workflow wf = SkewWorkflow();

  Table uniform = PaperUniformTable(rows, 606);
  Table skewed = PaperSkewedTable(rows, 606);

  SamplingOptions so;
  so.sample_fraction = 0.05;

  auto occupancy_of = [&](const Table& table) {
    ExecutionPlan probe;
    probe.key = DeriveDistributionKeys(wf).query_key;
    probe.clustering_factor = 1;
    return EstimateBlockOccupancy(wf, table, probe, so);
  };

  auto plan_for = [&](const Table& table, int64_t min_blocks,
                      bool sampling) -> ExecutionPlan {
    OptimizerOptions opts;
    opts.num_reducers = cluster.num_reducers;
    opts.num_records = table.num_rows();
    opts.min_blocks_per_reducer = min_blocks;
    if (min_blocks > 0) {
      // The §V heuristic counts estimated blocks, measured by sampling.
      opts.estimated_block_occupancy = occupancy_of(table);
    }
    if (!sampling) return OptimizePlan(wf, opts).value();
    opts.min_blocks_per_reducer = 0;
    opts.estimated_block_occupancy = 1.0;
    std::vector<ExecutionPlan> candidates = CandidatePlans(wf, opts).value();
    auto start = std::chrono::steady_clock::now();
    ExecutionPlan chosen =
        ChoosePlanBySampling(wf, table, candidates, cluster.num_reducers, so)
            .value();
    double sample_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("# sampling dispatch cost: %.3f wall seconds\n",
                sample_seconds);
    return chosen;
  };

  struct Strategy {
    const char* name;
    int64_t min_blocks;
    bool sampling;
  };
  std::printf("%-10s%14s%14s   (modeled cluster seconds)\n", "plan",
              "No-Skew", "Skew");
  for (Strategy s :
       {Strategy{"Normal", 0, false}, Strategy{"2Blocks", 2, false},
        Strategy{"4Blocks", 4, false}, Strategy{"Sampling", 0, true}}) {
    ExecutionPlan uniform_plan = plan_for(uniform, s.min_blocks, s.sampling);
    ExecutionPlan skew_plan = plan_for(skewed, s.min_blocks, s.sampling);
    double t_uniform = RunPlan(wf, uniform, uniform_plan, cluster).modeled_seconds;
    double t_skew = RunPlan(wf, skewed, skew_plan, cluster).modeled_seconds;
    std::printf("%-10s%14.3f%14.3f   cf=%lld/%lld\n", s.name, t_uniform,
                t_skew,
                static_cast<long long>(uniform_plan.clustering_factor),
                static_cast<long long>(skew_plan.clustering_factor));
    std::fflush(stdout);
  }
  return 0;
}
