// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Recovery experiment for the checkpoint subsystem (src/ckpt): the
// multi-job baseline runs one MapReduce job per measure, so a failure in
// job k of a 6-job sequence classically loses the first k-1 completed
// jobs too. With durable per-job checkpoints in the DFS volume, only the
// in-flight job is lost.
//
// The harness builds a six-measure workflow (Q3's two child-aggregation
// chains plus a sliding-window measure on top), then for every job
// boundary k in 1..5:
//
//   kill     — run with checkpointing into a fresh volume and a fault
//              injector that fails every task once k jobs have committed;
//              the run dies mid-sequence, leaving k durable entries;
//   resume   — re-run against the same volume: the k committed jobs are
//              restored (fingerprint- and checksum-verified) and only the
//              remaining 6-k execute.
//
// Acceptance (CASM_CHECK, so the binary is self-checking in CI):
// every resumed run restores exactly k jobs, executes exactly 6-k, and
// its results are *bit-identical* (tolerance 0.0) to the clean
// no-checkpoint reference; a final warm run restores all six jobs and
// executes none. The table reports recompute-vs-resume wall time; the
// JSON rows add the checkpoint byte counters.
//
// The checkpoint volume lives under CASM_CHECKPOINT_DIR when set (CI
// uploads its manifests as artifacts), else under the system temp dir.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "ckpt/checkpoint.h"
#include "core/multijob_evaluator.h"
#include "measure/workflow.h"

namespace {

using namespace casm;
using namespace casm::bench;

constexpr int kJobs = 6;

Granularity Gran(const SchemaPtr& schema,
                 std::vector<std::pair<std::string, std::string>> parts) {
  Result<Granularity> g = Granularity::Of(*schema, parts);
  CASM_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// Six measures: Q3's joined child-aggregation chains, topped by a
/// trailing window — one MapReduce job each under EvaluateMultiJob.
Workflow MakeSixJobWorkflow() {
  SchemaPtr schema = PaperSchema();
  WorkflowBuilder b(schema);
  Granularity fine = Gran(schema, {{"D1", "value"}, {"T1", "hour"}});
  Granularity mid = Gran(schema, {{"D1", "tier1"}, {"T1", "day"}});
  Granularity coarse = Gran(schema, {{"D1", "tier2"}, {"T1", "day"}});
  int m1 = b.AddBasic("R.sum", fine, AggregateFn::kSum, "D2");
  int m2 = b.AddBasic("R.count", fine, AggregateFn::kCount, "D2");
  int m3 = b.AddSourceAggregate("R.sum.up", mid, AggregateFn::kSum,
                                {WorkflowBuilder::ChildParent(m1)});
  int m4 = b.AddSourceAggregate("R.count.up", mid, AggregateFn::kSum,
                                {WorkflowBuilder::ChildParent(m2)});
  int m5 = b.AddSourceAggregate("R.avg", coarse, AggregateFn::kAvg,
                                {WorkflowBuilder::ChildParent(m3),
                                 WorkflowBuilder::ChildParent(m4)});
  b.AddSourceAggregate("R.trailing", coarse, AggregateFn::kAvg,
                       {b.Sibling(m5, "T1", -3, 0)});
  Result<Workflow> wf = std::move(b).Build();
  CASM_CHECK(wf.ok()) << wf.status().ToString();
  CASM_CHECK_EQ(wf.value().num_measures(), kJobs);
  return std::move(wf).value();
}

double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

}  // namespace

int main() {
  PrintHeader("Checkpoint recovery",
              "6-job sequence killed at each boundary: recompute vs resume");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(60000);
  Workflow wf = MakeSixJobWorkflow();
  Table table = PaperUniformTable(rows, 909);

  ParallelEvalOptions base;
  base.num_mappers = cluster.num_mappers;
  base.num_reducers = cluster.num_reducers;

  // Checkpoint volumes live under CASM_CHECKPOINT_DIR when set (one
  // subdirectory per kill boundary), else under the system temp dir.
  CheckpointOptions env = CheckpointOptionsFromEnv();
  const std::string ckpt_root =
      env.enabled()
          ? env.dir
          : (std::filesystem::temp_directory_path() / "casm_fig_recovery")
                .string();

  // ---- clean reference: no checkpointing; its wall time is the cost of
  // recomputing the whole sequence after a failure.
  auto t0 = std::chrono::steady_clock::now();
  Result<MultiJobResult> clean = EvaluateMultiJob(wf, table, base);
  CASM_CHECK(clean.ok()) << clean.status().ToString();
  const double recompute_seconds = Seconds(t0);
  CASM_CHECK_EQ(clean.value().jobs, kJobs);
  CASM_CHECK_EQ(clean.value().jobs_restored, 0);

  std::printf("%-12s%18s%15s%15s%18s%18s\n", "boundary", "recompute wall s",
              "kill wall s", "resume wall s", "jobs restored",
              "restored bytes");
  std::vector<JsonRow> json_rows;
  JsonRow clean_row{"recompute",
                    {{"wall_seconds", recompute_seconds},
                     {"jobs_executed", static_cast<double>(kJobs)},
                     {"jobs_restored", 0.0}}};
  AppendAttemptHistogram(clean.value().total_metrics, &clean_row);
  json_rows.push_back(clean_row);

  for (int k = 1; k < kJobs; ++k) {
    ParallelEvalOptions opts = base;
    opts.checkpoint.dir = ckpt_root + "/kill_after_" + std::to_string(k);
    std::error_code ec;
    std::filesystem::remove_all(opts.checkpoint.dir, ec);  // fresh volume

    // ---- kill: fail every task once k jobs have committed. The engine
    // runs map task 0's first attempt exactly once per job, so counting
    // those sightings counts completed engine runs.
    auto runs = std::make_shared<std::atomic<int>>(0);
    ParallelEvalOptions killed = opts;
    killed.fault_injector = [k, runs](MapReduceTaskPhase phase, int task,
                                      int attempt) -> Status {
      if (phase == MapReduceTaskPhase::kMap && task == 0 && attempt == 1) {
        runs->fetch_add(1);
      }
      if (runs->load() > k) {
        return Status::Internal("injected kill after " + std::to_string(k) +
                                " jobs");
      }
      return Status::OK();
    };
    t0 = std::chrono::steady_clock::now();
    Result<MultiJobResult> dead = EvaluateMultiJob(wf, table, killed);
    const double kill_seconds = Seconds(t0);
    CASM_CHECK(!dead.ok()) << "kill injector did not kill the sequence";

    // ---- resume: committed jobs restore, the rest recompute.
    t0 = std::chrono::steady_clock::now();
    Result<MultiJobResult> resumed = EvaluateMultiJob(wf, table, opts);
    const double resume_seconds = Seconds(t0);
    CASM_CHECK(resumed.ok()) << resumed.status().ToString();
    CASM_CHECK_EQ(resumed.value().jobs_restored, k);
    CASM_CHECK_EQ(resumed.value().jobs, kJobs - k);
    const MapReduceMetrics& m = resumed.value().total_metrics;
    CASM_CHECK_EQ(m.checkpoint_jobs_restored, k);
    CASM_CHECK_GT(m.checkpoint_bytes_restored, 0);
    Status identical = CompareResultSets(clean.value().results,
                                         resumed.value().results, 0.0);
    CASM_CHECK(identical.ok()) << "resume not bit-identical at boundary " << k
                               << ": " << identical.ToString();

    std::printf("%-12d%18.3f%15.3f%15.3f%18d%18lld\n", k, recompute_seconds,
                kill_seconds, resume_seconds, resumed.value().jobs_restored,
                static_cast<long long>(m.checkpoint_bytes_restored));
    JsonRow row{"kill_after_" + std::to_string(k),
                {{"recompute_wall_seconds", recompute_seconds},
                 {"kill_wall_seconds", kill_seconds},
                 {"resume_wall_seconds", resume_seconds},
                 {"jobs_restored", static_cast<double>(k)},
                 {"jobs_executed", static_cast<double>(kJobs - k)},
                 {"checkpoint_bytes_written",
                  static_cast<double>(m.checkpoint_bytes_written)},
                 {"checkpoint_bytes_restored",
                  static_cast<double>(m.checkpoint_bytes_restored)}}};
    AppendAttemptHistogram(m, &row);
    json_rows.push_back(row);
  }

  // ---- warm restart: the boundary-5 volume now holds all six entries,
  // so a rerun restores everything and executes nothing.
  ParallelEvalOptions warm = base;
  warm.checkpoint.dir = ckpt_root + "/kill_after_" + std::to_string(kJobs - 1);
  t0 = std::chrono::steady_clock::now();
  Result<MultiJobResult> warm_run = EvaluateMultiJob(wf, table, warm);
  const double warm_seconds = Seconds(t0);
  CASM_CHECK(warm_run.ok()) << warm_run.status().ToString();
  CASM_CHECK_EQ(warm_run.value().jobs_restored, kJobs);
  CASM_CHECK_EQ(warm_run.value().jobs, 0);
  CASM_CHECK_EQ(warm_run.value().total_metrics.emitted_pairs, 0);
  Status identical = CompareResultSets(clean.value().results,
                                       warm_run.value().results, 0.0);
  CASM_CHECK(identical.ok()) << identical.ToString();
  std::printf("%-12s%18.3f%15s%15.3f%18d%18lld\n", "warm", recompute_seconds,
              "-", warm_seconds, warm_run.value().jobs_restored,
              static_cast<long long>(
                  warm_run.value().total_metrics.checkpoint_bytes_restored));
  std::printf("# checkpoint volumes under %s\n", ckpt_root.c_str());
  json_rows.push_back(
      JsonRow{"warm_restart",
              {{"recompute_wall_seconds", recompute_seconds},
               {"resume_wall_seconds", warm_seconds},
               {"jobs_restored", static_cast<double>(kJobs)},
               {"jobs_executed", 0.0},
               {"checkpoint_bytes_restored",
                static_cast<double>(
                    warm_run.value().total_metrics.checkpoint_bytes_restored)}}});
  MaybeWriteJson("fig_recovery", json_rows);
  return 0;
}
