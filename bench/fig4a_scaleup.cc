// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(a) — System scale-up: query response time vs data-set size for
// Q1-Q6, 50 mappers and 50 reducers. Paper shape: every query scales close
// to linearly in the input size; Q6 is consistently slowest because its
// sibling window forces an overlapping key (extra shuffled data, larger
// blocks to sort).

#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(a)", "response time vs data size, Q1-Q6, 50m/50r");
  ClusterConfig cluster;

  std::vector<int64_t> sizes = {ScaledRows(50000), ScaledRows(100000),
                                ScaledRows(200000), ScaledRows(400000)};
  std::printf("%-8s", "rows");
  for (PaperQuery q : {PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ3,
                       PaperQuery::kQ4, PaperQuery::kQ5, PaperQuery::kQ6}) {
    std::printf("%12s", PaperQueryName(q));
  }
  std::printf("   (modeled cluster seconds)\n");

  for (int64_t rows : sizes) {
    Table table = PaperUniformTable(rows, 4242);
    std::printf("%-8lld", static_cast<long long>(rows));
    for (PaperQuery q : {PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ3,
                         PaperQuery::kQ4, PaperQuery::kQ5, PaperQuery::kQ6}) {
      Workflow wf = MakePaperQuery(q);
      RunOutcome outcome = RunQuery(wf, table, cluster);
      std::printf("%12.3f", outcome.modeled_seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
