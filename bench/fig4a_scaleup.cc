// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(a) — System scale-up: query response time vs data-set size for
// Q1-Q6, 50 mappers and 50 reducers. Paper shape: every query scales close
// to linearly in the input size; Q6 is consistently slowest because its
// sibling window forces an overlapping key (extra shuffled data, larger
// blocks to sort).
//
// The JSON output additionally carries a row-vs-columnar ladder: the same
// evaluation run once with the legacy row-at-a-time map/aggregation loops
// and once with the columnar RecordBatch paths (both produce identical
// results), at two worker counts. CI's bench-smoke job asserts that every
// ladder point reports both variants and that columnar throughput is no
// worse than the row path at the 2-worker point.

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "measure/workflow_parser.h"

namespace {

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(a)", "response time vs data size, Q1-Q6, 50m/50r");
  ClusterConfig cluster;
  std::vector<JsonRow> json;

  std::vector<int64_t> sizes = {ScaledRows(50000), ScaledRows(100000),
                                ScaledRows(200000), ScaledRows(400000)};
  std::printf("%-8s", "rows");
  for (PaperQuery q : {PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ3,
                       PaperQuery::kQ4, PaperQuery::kQ5, PaperQuery::kQ6}) {
    std::printf("%12s", PaperQueryName(q));
  }
  std::printf("   (modeled cluster seconds)\n");

  for (int64_t rows : sizes) {
    Table table = PaperUniformTable(rows, 4242);
    std::printf("%-8lld", static_cast<long long>(rows));
    for (PaperQuery q : {PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ3,
                         PaperQuery::kQ4, PaperQuery::kQ5, PaperQuery::kQ6}) {
      Workflow wf = MakePaperQuery(q);
      RunOutcome outcome = RunQuery(wf, table, cluster);
      std::printf("%12.3f", outcome.modeled_seconds);
      std::fflush(stdout);
      JsonRow row{std::to_string(rows) + "/" + PaperQueryName(q), {}};
      row.fields.emplace_back("rows", static_cast<double>(rows));
      row.fields.emplace_back("modeled_seconds", outcome.modeled_seconds);
      AppendResourceMetrics(outcome.result.metrics, &row);
      json.push_back(std::move(row));
    }
    std::printf("\n");
  }

  // ---- Row vs columnar ladder. A multi-basic grouping (the regime the
  // columnar refactor targets: per-row region extraction dominates) over
  // a fixed-size table, so the two variants face identical work. Each
  // variant runs three times interleaved and keeps its best wall time,
  // which suppresses one-off scheduler noise on shared CI machines.
  const int64_t ladder_rows = std::max<int64_t>(ScaledRows(200000), 60000);
  Table ladder_table = PaperUniformTable(ladder_rows, 777);
  SchemaPtr schema = PaperSchema();
  Workflow ladder_wf =
      ParseWorkflow(schema,
                    "M1 := SUM(D2)   AT D1:tier3, T1:day;"
                    "M2 := COUNT(D2) AT D1:tier3, T1:day;"
                    "M3 := MAX(D3)   AT D1:tier3, T1:day;")
          .value();
  OptimizerOptions ladder_opts;
  ladder_opts.num_records = ladder_table.num_rows();
  std::printf("\n%-14s%16s%16s%10s   (row vs columnar, %lld rows)\n",
              "workers", "row rows/s", "columnar rows/s", "speedup",
              static_cast<long long>(ladder_rows));
  for (int workers : {2, 8}) {
    OptimizerOptions opts = ladder_opts;
    opts.num_reducers = workers;
    ExecutionPlan plan = OptimizePlan(ladder_wf, opts).value();
    double best[2] = {1e300, 1e300};  // [0] = row, [1] = columnar
    MapReduceMetrics columnar_metrics;
    for (int rep = 0; rep < 3; ++rep) {
      for (int variant = 0; variant < 2; ++variant) {
        ParallelEvalOptions eval;
        eval.num_mappers = workers;
        eval.num_reducers = workers;
        eval.columnar = variant == 1;
        if (variant == 0) eval.local_agg.batch_rows = -1;  // legacy loops
        const auto start = std::chrono::steady_clock::now();
        Result<ParallelEvalResult> result =
            EvaluateParallel(ladder_wf, ladder_table, plan, eval);
        const double seconds = WallSeconds(start);
        CASM_CHECK(result.ok()) << result.status().ToString();
        best[variant] = std::min(best[variant], seconds);
        if (variant == 1) columnar_metrics = result->metrics;
      }
    }
    const double row_tput = static_cast<double>(ladder_rows) / best[0];
    const double col_tput = static_cast<double>(ladder_rows) / best[1];
    std::printf("%-14d%16.0f%16.0f%9.2fx\n", workers, row_tput, col_tput,
                col_tput / row_tput);
    JsonRow row{"ladder/w" + std::to_string(workers), {}};
    row.fields.emplace_back("workers", static_cast<double>(workers));
    row.fields.emplace_back("ladder_rows", static_cast<double>(ladder_rows));
    row.fields.emplace_back("row_seconds", best[0]);
    row.fields.emplace_back("columnar_seconds", best[1]);
    row.fields.emplace_back("row_throughput_rows_per_sec", row_tput);
    row.fields.emplace_back("columnar_throughput_rows_per_sec", col_tput);
    AppendResourceMetrics(columnar_metrics, &row);
    json.push_back(std::move(row));
  }

  MaybeWriteJson("fig4a", json);
  return 0;
}
