// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Figure 4(c) — Impact of the clustering factor: measured response time
// across cf values for a sliding-window query, overlaid with the §IV-B
// analytical prediction. Paper shape: U-curve — the naive cf=1 scheme is
// about twice as slow as the optimum because every record is duplicated
// d+1 times; an excessive cf destroys parallelism; the model prediction
// tracks the measured curve and its optimum.

#include <vector>

#include "bench/bench_util.h"
#include "core/cost_model.h"
#include "core/key_derivation.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Figure 4(c)",
              "response time vs clustering factor, window query, model "
              "overlay");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(300000);
  Table table = PaperUniformTable(rows, 90125);

  // Q6: key <D1:tier1, T1:hour(-24,0)>, d = 24, n_g = 64 * 480.
  Workflow wf = MakePaperQuery(PaperQuery::kQ6);
  DistributionKey key = DeriveDistributionKeys(wf).query_key;
  ExecutionPlan base;
  base.key = key;
  const int64_t n_g = key.NumBaseBlocks(*wf.schema());
  const int64_t d = base.AnnotationWidth();
  const int64_t cf_star =
      OptimalClusteringFactor(rows, n_g, d, cluster.num_reducers, 0);
  std::printf("# d=%lld n_g=%lld model-optimal cf*=%lld\n",
              static_cast<long long>(d), static_cast<long long>(n_g),
              static_cast<long long>(cf_star));

  const ClusterCostParams params = ClusterCostParams::Default();
  const double fixed = params.startup_seconds +
                       static_cast<double>(rows) / cluster.num_mappers *
                           params.map_seconds_per_record;
  std::printf("%-8s%14s%14s%16s%14s\n", "cf", "measured_s", "predicted_s",
              "predicted_load", "replication");
  for (int64_t cf : std::vector<int64_t>{1, 2, 5, 10, 25, 50, 100, 250, 614}) {
    ExecutionPlan plan = base;
    plan.clustering_factor = cf;
    RunOutcome outcome = RunPlan(wf, table, plan, cluster);
    const double predicted =
        OverlappingMaxLoad(rows, n_g, d, cluster.num_reducers, cf);
    std::printf("%-8lld%14.3f%14.3f%16.0f%14.3f\n", static_cast<long long>(cf),
                outcome.modeled_seconds,
                fixed + ReducerCostSeconds(predicted, params), predicted,
                outcome.result.metrics.ReplicationFactor());
    std::fflush(stdout);
  }
  return 0;
}
