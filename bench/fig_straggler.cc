// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Straggler tail-latency experiment (beyond the paper's figures, in the
// spirit of its Hadoop testbed): the paper's response time is the map
// cost plus the heaviest reducer's cost, so one straggling node directly
// stretches the tail. This harness injects a deterministic ~20x slowdown
// into one map task's primary execution and shows the engine's recovery
// ladder:
//
//   clean          — no injection (the reference result and runtime);
//   straggler      — slowdown injected, no speculation: the job waits the
//                    full delay out;
//   speculation    — slowdown injected, speculation on: a backup execution
//                    wins and the measured total drops well below the
//                    no-speculation run, with results bit-identical to
//                    clean;
//   deadline       — slowdown injected, no speculation, a deadline shorter
//                    than the delay: the run fails fast with
//                    DeadlineExceeded instead of hanging.
//
// The modeled cluster response (mr/cluster_model.h) is printed
// alongside, showing the same recovery in the analytic model the figure
// harnesses use. Its straggler_slowdown parameter is not restated by
// hand: the no-speculation run records a trace (obs/trace.h) and
// FitStragglerSlowdown fits the slowdown from the measured attempt
// durations, so the modeled and measured columns share one source.

#include <cstdio>

#include "bench/bench_util.h"
#include "obs/trace.h"

int main() {
  using namespace casm;
  using namespace casm::bench;

  PrintHeader("Straggler recovery",
              "injected 20x-slow map task: speculation + deadlines");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(200000);
  Workflow wf = MakePaperQuery(PaperQuery::kQ3);
  Table table = PaperUniformTable(rows, 707);

  OptimizerOptions opts;
  opts.num_reducers = cluster.num_reducers;
  opts.num_records = table.num_rows();
  ExecutionPlan plan = OptimizePlan(wf, opts).value();

  ParallelEvalOptions base;
  base.num_mappers = cluster.num_mappers;
  base.num_reducers = cluster.num_reducers;
  // Speculation needs spare workers to overlap the straggler: an injected
  // sleep holds a worker without burning CPU, so a fixed pool well above
  // the core count keeps the experiment meaningful on small machines.
  base.num_threads = 8;

  // ---- clean reference run.
  Result<ParallelEvalResult> clean = EvaluateParallel(wf, table, plan, base);
  CASM_CHECK(clean.ok()) << clean.status().ToString();
  const MapReduceMetrics& clean_metrics = clean.value().metrics;

  // The injected delay: ~20x a healthy map attempt, with a floor that
  // keeps the experiment meaningful at small CASM_BENCH_SCALE.
  const double delay =
      std::max(20.0 * clean_metrics.map_attempt_p50_seconds, 0.5);
  const int max_attempts = base.max_task_attempts;
  auto slow_primary_map = [delay, max_attempts](MapReduceTaskPhase phase,
                                                int task, int attempt) {
    // Slow every attempt of task 0's primary execution; the speculative
    // backup (attempt > max_task_attempts) runs at full speed.
    const bool primary = attempt <= max_attempts;
    return phase == MapReduceTaskPhase::kMap && task == 0 && primary ? delay
                                                                     : 0.0;
  };

  // ---- straggler, no speculation: the tail absorbs the full delay.
  // A locally-enabled recorder traces this run regardless of CASM_TRACE;
  // FitStragglerSlowdown reads the attempt durations off the trace below.
  TraceRecorder no_spec_trace;
  no_spec_trace.set_enabled(true);
  ParallelEvalOptions straggler = base;
  straggler.slow_task_injector = slow_primary_map;
  straggler.trace = &no_spec_trace;
  Result<ParallelEvalResult> no_spec =
      EvaluateParallel(wf, table, plan, straggler);
  CASM_CHECK(no_spec.ok()) << no_spec.status().ToString();
  const double fitted_slowdown =
      FitStragglerSlowdown(no_spec_trace.Snapshot());

  // ---- straggler + speculation: a backup execution recovers the tail.
  ParallelEvalOptions speculative = straggler;
  speculative.trace = nullptr;  // back to the CASM_TRACE-global recorder
  speculative.speculative_execution = true;
  speculative.speculation_latency_multiple = 3.0;
  speculative.speculation_min_completed_fraction = 0.5;
  speculative.speculation_min_runtime_seconds = delay / 10;
  Result<ParallelEvalResult> spec =
      EvaluateParallel(wf, table, plan, speculative);
  CASM_CHECK(spec.ok()) << spec.status().ToString();

  // The acceptance bar: the backup won, the tail shrank, and neither the
  // straggler nor the speculative win perturbed the results.
  CASM_CHECK_GE(spec.value().metrics.speculative_wins, 1);
  CASM_CHECK_LT(spec.value().metrics.total_seconds,
                no_spec.value().metrics.total_seconds);
  Status identical =
      CompareResultSets(clean.value().results, no_spec.value().results, 1e-9);
  CASM_CHECK(identical.ok()) << identical.ToString();
  identical =
      CompareResultSets(clean.value().results, spec.value().results, 1e-9);
  CASM_CHECK(identical.ok()) << identical.ToString();

  // ---- deadline shorter than the injected delay: fail fast, not hang.
  ParallelEvalOptions deadlined = straggler;
  deadlined.trace = nullptr;
  deadlined.deadline_seconds = delay / 2;
  Result<ParallelEvalResult> dead =
      EvaluateParallel(wf, table, plan, deadlined);
  CASM_CHECK(!dead.ok());
  CASM_CHECK(dead.status().code() == StatusCode::kDeadlineExceeded)
      << dead.status().ToString();

  std::printf("# injected delay: %.3f s (20x healthy map p50, floor 0.5)\n",
              delay);
  std::printf("%-24s%16s%20s\n", "run", "measured wall s", "speculative wins");
  std::printf("%-24s%16.3f%20lld\n", "clean",
              clean_metrics.total_seconds,
              static_cast<long long>(clean_metrics.speculative_wins));
  std::printf("%-24s%16.3f%20lld\n", "straggler (no spec)",
              no_spec.value().metrics.total_seconds,
              static_cast<long long>(no_spec.value().metrics.speculative_wins));
  std::printf("%-24s%16.3f%20lld\n", "straggler + speculation",
              spec.value().metrics.total_seconds,
              static_cast<long long>(spec.value().metrics.speculative_wins));
  std::printf("%-24s%16s%20s   (%s)\n", "deadline < delay", "failed fast",
              "-", StatusCodeToString(dead.status().code()));

  // Modeled cluster view: one slow node, with and without the scheduler's
  // speculative re-execution. The slowdown is the one fitted from the
  // measured no-speculation trace, not the injected 20x restated by hand.
  std::printf("# fitted straggler_slowdown: %.1fx "
              "(FitStragglerSlowdown over the no-speculation run trace)\n",
              fitted_slowdown);
  ClusterCostParams params = ClusterCostParams::Default();
  params.straggler_slowdown = fitted_slowdown;
  params.speculation_detection_multiple = 3.0;
  const double healthy = ModeledResponseSeconds(
      clean_metrics, cluster.num_mappers, params);
  const double slowed = ModeledStragglerResponseSeconds(
      clean_metrics, cluster.num_mappers, params, /*with_speculation=*/false);
  const double recovered = ModeledStragglerResponseSeconds(
      clean_metrics, cluster.num_mappers, params, /*with_speculation=*/true);
  std::printf("# modeled cluster seconds: healthy=%.1f straggler=%.1f "
              "straggler+speculation=%.1f\n",
              healthy, slowed, recovered);

  JsonRow clean_row{"clean",
                    {{"measured_wall_seconds", clean_metrics.total_seconds},
                     {"speculative_wins",
                      static_cast<double>(clean_metrics.speculative_wins)},
                     {"modeled_seconds", healthy}}};
  AppendAttemptHistogram(clean_metrics, &clean_row);
  JsonRow no_spec_row{
      "straggler_no_speculation",
      {{"measured_wall_seconds", no_spec.value().metrics.total_seconds},
       {"speculative_wins",
        static_cast<double>(no_spec.value().metrics.speculative_wins)},
       {"modeled_seconds", slowed},
       {"fitted_straggler_slowdown", fitted_slowdown}}};
  AppendAttemptHistogram(no_spec.value().metrics, &no_spec_row);
  JsonRow spec_row{
      "straggler_speculation",
      {{"measured_wall_seconds", spec.value().metrics.total_seconds},
       {"speculative_wins",
        static_cast<double>(spec.value().metrics.speculative_wins)},
       {"modeled_seconds", recovered}}};
  AppendAttemptHistogram(spec.value().metrics, &spec_row);
  MaybeWriteJson(
      "fig_straggler",
      {clean_row, no_spec_row, spec_row,
       JsonRow{"deadline_below_delay",
               {{"injected_delay_seconds", delay},
                {"failed_fast", 1.0}}}});
  return 0;
}
