// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Availability experiment for the storage fault domains (DESIGN.md §12):
// a checkpointed multi-job evaluation is run on an outage ladder —
// clean, each single node down for the whole run, flaky IO, a mid-run
// outage window, and a kill + resume with a node down — and the harness
// self-checks that every degraded run produces results *bit-identical*
// (tolerance 0.0) to the clean reference. Availability means the answer
// never changes; only the resilience counters (write failovers, IO
// retries, replica repairs) move. A final scenario damages the clean
// run's volume (one deleted replica, one corrupted replica) and measures
// Scrub(): the first pass restores full replication, the follow-up pass
// must report zero under-replicated blocks.
//
// Acceptance (CASM_CHECK, so the binary is self-checking in CI):
//   * clean run: zero failovers, zero IO retries;
//   * every outage scenario: OK status, bit-identical results, nonzero
//     failovers (writes landed off the down node), zero under-replicated
//     blocks (replication target met on the survivors);
//   * resume-under-outage: committed jobs restore from the surviving
//     replicas;
//   * scrub: first pass finds and repairs the planted damage, second
//     pass reports a fully replicated volume.
//
// Checkpoint volumes live under CASM_CHECKPOINT_DIR when set (CI uploads
// the manifests as artifacts), else under the system temp dir.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckpt/checkpoint.h"
#include "common/fault.h"
#include "core/multijob_evaluator.h"
#include "dfs/volume.h"

namespace {

using namespace casm;
using namespace casm::bench;

double Seconds(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

ParallelEvalOptions BaseOptions(const ClusterConfig& cluster,
                                const std::string& ckpt_dir) {
  ParallelEvalOptions o;
  o.num_mappers = cluster.num_mappers;
  o.num_reducers = cluster.num_reducers;
  o.checkpoint.dir = ckpt_dir;
  o.checkpoint.volume.block_size_bytes = 1024;  // multi-block entries
  o.checkpoint.volume.io_retry_backoff_initial_ms = 0;
  return o;
}

struct ScenarioOutcome {
  double wall_seconds = 0;
  MultiJobResult result;
};

/// Runs one checkpointed evaluation under `plan`, checks it succeeded
/// with bit-identical results, and returns its metrics.
ScenarioOutcome RunScenario(const char* label, const Workflow& wf,
                            const Table& table,
                            const MeasureResultSet& reference,
                            ParallelEvalOptions opts, const FaultPlan* plan) {
  std::error_code ec;
  std::filesystem::remove_all(opts.checkpoint.dir, ec);  // fresh volume
  opts.fault_plan = plan;
  const auto t0 = std::chrono::steady_clock::now();
  Result<MultiJobResult> run = EvaluateMultiJob(wf, table, opts);
  ScenarioOutcome outcome;
  outcome.wall_seconds = Seconds(t0);
  CASM_CHECK(run.ok()) << label << ": " << run.status().ToString();
  Status identical = CompareResultSets(reference, run.value().results, 0.0);
  CASM_CHECK(identical.ok()) << label << " results differ from clean run: "
                             << identical.ToString();
  outcome.result = std::move(run).value();
  return outcome;
}

void PrintRow(const char* scenario, const ScenarioOutcome& o) {
  const MapReduceMetrics& m = o.result.total_metrics;
  std::printf("%-18s%10.3f%12lld%12lld%10lld%10lld%12lld%10s\n", scenario,
              o.wall_seconds, static_cast<long long>(m.dfs_write_failovers),
              static_cast<long long>(m.dfs_io_retries),
              static_cast<long long>(m.dfs_corrupt_replicas),
              static_cast<long long>(m.dfs_repaired_replicas),
              static_cast<long long>(m.dfs_under_replicated_blocks),
              m.checkpoint_degraded ? "yes" : "no");
}

JsonRow MakeRow(const std::string& label, const ScenarioOutcome& o) {
  const MapReduceMetrics& m = o.result.total_metrics;
  return JsonRow{
      label,
      {{"wall_seconds", o.wall_seconds},
       {"dfs_write_failovers", static_cast<double>(m.dfs_write_failovers)},
       {"dfs_io_retries", static_cast<double>(m.dfs_io_retries)},
       {"dfs_corrupt_replicas", static_cast<double>(m.dfs_corrupt_replicas)},
       {"dfs_repaired_replicas",
        static_cast<double>(m.dfs_repaired_replicas)},
       {"dfs_under_replicated_blocks",
        static_cast<double>(m.dfs_under_replicated_blocks)},
       {"checkpoint_degraded", m.checkpoint_degraded ? 1.0 : 0.0},
       {"jobs_restored", static_cast<double>(o.result.jobs_restored)}}};
}

}  // namespace

int main() {
  PrintHeader("Storage availability",
              "outage ladder: results must stay bit-identical, only the "
              "resilience counters may move");
  ClusterConfig cluster;
  const int64_t rows = ScaledRows(40000);
  Workflow wf = MakePaperQuery(PaperQuery::kQ3);  // five measures, one job each
  Table table = PaperUniformTable(rows, 808);

  CheckpointOptions env = CheckpointOptionsFromEnv();
  const std::string ckpt_root =
      env.enabled()
          ? env.dir
          : (std::filesystem::temp_directory_path() / "casm_fig_availability")
                .string();
  const int num_nodes = DfsVolumeOptions{}.num_nodes;

  std::printf("%-18s%10s%12s%12s%10s%10s%12s%10s\n", "scenario", "wall s",
              "failovers", "io retries", "corrupt", "repaired", "under-repl",
              "degraded");
  std::vector<JsonRow> json_rows;

  // ---- clean reference: no faults; the resilience machinery must be
  // invisible when nothing fails.
  ParallelEvalOptions clean_opts = BaseOptions(cluster, ckpt_root + "/clean");
  std::error_code ec;
  std::filesystem::remove_all(clean_opts.checkpoint.dir, ec);
  const auto t0 = std::chrono::steady_clock::now();
  Result<MultiJobResult> clean = EvaluateMultiJob(wf, table, clean_opts);
  CASM_CHECK(clean.ok()) << clean.status().ToString();
  ScenarioOutcome clean_outcome{Seconds(t0), std::move(clean).value()};
  const MapReduceMetrics& cm = clean_outcome.result.total_metrics;
  CASM_CHECK_EQ(cm.dfs_write_failovers, 0);
  CASM_CHECK_EQ(cm.dfs_io_retries, 0);
  CASM_CHECK_EQ(cm.dfs_under_replicated_blocks, 0);
  CASM_CHECK(!cm.checkpoint_degraded);
  const MeasureResultSet& reference = clean_outcome.result.results;
  PrintRow("clean", clean_outcome);
  json_rows.push_back(MakeRow("clean", clean_outcome));

  // ---- any single node down for the whole run: write failover places
  // every replica on the survivors; the answer is bit-identical.
  for (int node = 0; node < num_nodes; ++node) {
    FaultPlan plan(100 + node);
    FaultPlan::NodeOutage outage;
    outage.node = node;
    plan.Add(outage);
    const std::string label = "node" + std::to_string(node) + "_down";
    ScenarioOutcome o = RunScenario(
        label.c_str(), wf, table, reference,
        BaseOptions(cluster, ckpt_root + "/" + label), &plan);
    const MapReduceMetrics& m = o.result.total_metrics;
    CASM_CHECK_GT(m.dfs_write_failovers, 0) << label;
    CASM_CHECK_EQ(m.dfs_under_replicated_blocks, 0) << label;
    PrintRow(label.c_str(), o);
    json_rows.push_back(MakeRow(label, o));
  }

  // ---- flaky IO: every 6th write and every 9th read fails transiently;
  // bounded retry with backoff absorbs all of it.
  {
    FaultPlan plan(7);
    FaultPlan::IoError write_err;
    write_err.op = "write";
    write_err.every_nth = 6;
    plan.Add(write_err);
    FaultPlan::IoError read_err;
    read_err.op = "read";
    read_err.every_nth = 9;
    plan.Add(read_err);
    ScenarioOutcome o =
        RunScenario("flaky_io", wf, table, reference,
                    BaseOptions(cluster, ckpt_root + "/flaky_io"), &plan);
    CASM_CHECK_GT(o.result.total_metrics.dfs_io_retries, 0);
    PrintRow("flaky_io", o);
    json_rows.push_back(MakeRow("flaky_io", o));
  }

  // ---- mid-run outage: a node drops out after the first few IO
  // operations and never comes back; later writes fail over.
  {
    FaultPlan plan(11);
    FaultPlan::NodeOutage outage;
    outage.node = 1;
    outage.from_io_op = 8;
    plan.Add(outage);
    ScenarioOutcome o = RunScenario(
        "mid_run_outage", wf, table, reference,
        BaseOptions(cluster, ckpt_root + "/mid_run_outage"), &plan);
    CASM_CHECK_GT(o.result.total_metrics.dfs_write_failovers, 0);
    PrintRow("mid_run_outage", o);
    json_rows.push_back(MakeRow("mid_run_outage", o));
  }

  // ---- kill + resume with a node down: commit two jobs, crash, then
  // resume while node 2 is unreachable — the committed jobs restore from
  // the surviving replicas instead of recomputing.
  {
    const std::string dir = ckpt_root + "/kill_resume";
    ParallelEvalOptions kill_opts = BaseOptions(cluster, dir);
    std::filesystem::remove_all(dir, ec);
    auto runs = std::make_shared<std::atomic<int>>(0);
    kill_opts.fault_injector = [runs](MapReduceTaskPhase phase, int task,
                                      int attempt) -> Status {
      if (phase == MapReduceTaskPhase::kMap && task == 0 && attempt == 1) {
        runs->fetch_add(1);
      }
      if (runs->load() > 2) {
        return Status::Internal("injected kill after 2 jobs");
      }
      return Status::OK();
    };
    Result<MultiJobResult> dead = EvaluateMultiJob(wf, table, kill_opts);
    CASM_CHECK(!dead.ok()) << "kill injector did not kill the sequence";

    FaultPlan plan(13);
    FaultPlan::NodeOutage outage;
    outage.node = 2;
    plan.Add(outage);
    ParallelEvalOptions resume_opts = BaseOptions(cluster, dir);
    resume_opts.fault_plan = &plan;
    const auto t1 = std::chrono::steady_clock::now();
    Result<MultiJobResult> resumed = EvaluateMultiJob(wf, table, resume_opts);
    ScenarioOutcome o;
    o.wall_seconds = Seconds(t1);
    CASM_CHECK(resumed.ok()) << resumed.status().ToString();
    CASM_CHECK_EQ(resumed.value().jobs_restored, 2);
    Status identical =
        CompareResultSets(reference, resumed.value().results, 0.0);
    CASM_CHECK(identical.ok()) << "resume under outage not bit-identical: "
                               << identical.ToString();
    o.result = std::move(resumed).value();
    PrintRow("kill_resume", o);
    json_rows.push_back(MakeRow("kill_resume", o));
  }

  // ---- scrub: plant damage in the clean volume (delete one replica of
  // one block, corrupt one replica of another file) and measure the
  // verify + re-replicate pass. The follow-up scrub must see a fully
  // replicated volume again.
  {
    Result<CheckpointLog> log = CheckpointLog::Open(
        clean_opts.checkpoint, FingerprintQuery(wf, table));
    CASM_CHECK(log.ok()) << log.status().ToString();
    const DfsVolume& volume = log.value().volume();
    const std::string root = volume.root();

    // Delete the first on-disk replica found of job 0's entry and flip a
    // byte in one replica of job 1's entry.
    auto damage = [&](const std::string& name, bool corrupt) {
      for (int node = 0; node < num_nodes; ++node) {
        const std::string path = root + "/node" + std::to_string(node) + "/" +
                                 name + ".blk0";
        if (!std::filesystem::exists(path)) continue;
        if (corrupt) {
          std::FILE* f = std::fopen(path.c_str(), "r+b");
          CASM_CHECK(f != nullptr) << path;
          char c = 0;
          CASM_CHECK_EQ(std::fread(&c, 1, 1, f), 1u);
          c = static_cast<char>(c ^ 0x5a);
          std::fseek(f, 0, SEEK_SET);
          CASM_CHECK_EQ(std::fwrite(&c, 1, 1, f), 1u);
          std::fclose(f);
        } else {
          std::filesystem::remove(path);
        }
        return;
      }
      CASM_CHECK(false) << "no replica found for " << name;
    };
    damage(log.value().JobEntryName(0), /*corrupt=*/false);
    damage(log.value().JobEntryName(1), /*corrupt=*/true);

    const auto t1 = std::chrono::steady_clock::now();
    Result<ScrubReport> first = volume.Scrub();
    const double scrub_seconds = Seconds(t1);
    CASM_CHECK(first.ok()) << first.status().ToString();
    CASM_CHECK_GE(first.value().replicas_missing, 1);
    CASM_CHECK_GE(first.value().replicas_corrupt, 1);
    CASM_CHECK_GE(first.value().replicas_rewritten, 2);
    CASM_CHECK_EQ(first.value().unrecoverable_blocks, 0);

    Result<ScrubReport> second = volume.Scrub();
    CASM_CHECK(second.ok()) << second.status().ToString();
    CASM_CHECK_EQ(second.value().under_replicated_blocks, 0);
    CASM_CHECK_EQ(second.value().replicas_missing, 0);
    CASM_CHECK_EQ(second.value().replicas_corrupt, 0);

    std::printf("%-18s%10.3f  %s\n", "scrub", scrub_seconds,
                first.value().ToString().c_str());
    json_rows.push_back(JsonRow{
        "scrub",
        {{"wall_seconds", scrub_seconds},
         {"files_scanned", static_cast<double>(first.value().files_scanned)},
         {"blocks_checked",
          static_cast<double>(first.value().blocks_checked)},
         {"replicas_missing",
          static_cast<double>(first.value().replicas_missing)},
         {"replicas_corrupt",
          static_cast<double>(first.value().replicas_corrupt)},
         {"replicas_rewritten",
          static_cast<double>(first.value().replicas_rewritten)},
         {"under_replicated_blocks",
          static_cast<double>(first.value().under_replicated_blocks)}}});
  }

  std::printf("# checkpoint volumes under %s\n", ckpt_root.c_str());
  MaybeWriteJson("fig_availability", json_rows);
  return 0;
}
