// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Deterministic multi-query workload generator shared by the service
// benchmark (bench/fig_service.cc) and the service stress tests
// (tests/svc_test.cc). A workload is a sequence of (query, arrival
// offset, priority) items:
//
//   - The query mix is Zipf-distributed over a template list (Q1 most
//     popular), modeling the few-hot-dashboards-many-cold-reports shape
//     of real multi-tenant OLAP traffic. A skewed mix is what makes
//     shared-scan batching pay off: hot templates co-arrive and share.
//   - Arrivals are a Poisson process (exponential inter-arrival times via
//     inverse-CDF), the standard open-loop offered-load model.
//
// Everything derives from the caller's seed through common/rng.h —
// no rand(), no wall-clock seeding — so a workload is reproducible
// bit-for-bit across runs, platforms, and the bench/test pair.

#ifndef CASM_BENCH_WORKLOAD_H_
#define CASM_BENCH_WORKLOAD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "queries/paper_queries.h"

namespace casm::bench {

struct WorkloadOptions {
  uint64_t seed = 0x5eedULL;
  int num_queries = 32;
  /// Zipf exponent of the template-popularity distribution; 0 = uniform.
  double zipf_s = 1.0;
  /// Offered load of the Poisson arrival process; <= 0 collapses every
  /// arrival to offset 0 (a closed burst — the bench's batching-window
  /// stress case).
  double arrivals_per_second = 0;
  /// Every k-th item (k > 0) is submitted at priority 1 instead of 0,
  /// exercising the service's priority ordering; 0 = all priority 0.
  int high_priority_every = 0;
  /// Query templates in popularity order (index 0 = hottest).
  std::vector<PaperQuery> mix = {PaperQuery::kQ1, PaperQuery::kQ2,
                                 PaperQuery::kQ3, PaperQuery::kQ4,
                                 PaperQuery::kQ5, PaperQuery::kQ6};
};

struct WorkloadItem {
  PaperQuery query;
  /// Template index into WorkloadOptions::mix (stable across runs; lets
  /// consumers key per-template bookkeeping without re-deriving it).
  int template_index;
  /// Seconds after workload start at which the query arrives.
  double arrival_seconds;
  int priority;
};

/// Generates the workload. Deterministic in `options` (same options ->
/// bit-identical items).
inline std::vector<WorkloadItem> MakeWorkload(const WorkloadOptions& options) {
  CASM_CHECK(!options.mix.empty());
  CASM_CHECK(options.num_queries >= 0);
  // Zipf CDF over template ranks: P(i) proportional to 1/(i+1)^s.
  std::vector<double> cdf(options.mix.size());
  double total = 0;
  for (size_t i = 0; i < options.mix.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), options.zipf_s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;

  Rng rng(options.seed);
  std::vector<WorkloadItem> items;
  items.reserve(static_cast<size_t>(options.num_queries));
  double clock = 0;
  for (int i = 0; i < options.num_queries; ++i) {
    const double u = rng.UniformDouble();
    size_t pick = 0;
    while (pick + 1 < cdf.size() && u > cdf[pick]) ++pick;
    if (options.arrivals_per_second > 0) {
      // Exponential inter-arrival: -ln(1 - u) / lambda. 1 - u is in
      // (0, 1] for u in [0, 1), so the log is finite.
      clock += -std::log(1.0 - rng.UniformDouble()) /
               options.arrivals_per_second;
    }
    WorkloadItem item;
    item.query = options.mix[pick];
    item.template_index = static_cast<int>(pick);
    item.arrival_seconds = clock;
    item.priority = options.high_priority_every > 0 &&
                            (i + 1) % options.high_priority_every == 0
                        ? 1
                        : 0;
    items.push_back(item);
  }
  return items;
}

}  // namespace casm::bench

#endif  // CASM_BENCH_WORKLOAD_H_
