// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Shared harness utilities for the figure-reproduction benchmarks.
//
// Each fig4*_ binary regenerates one panel of the paper's Figure 4. The
// in-process engine executes the real dataflow and measures the exact
// per-reducer workload distribution; the response time of the paper's
// cluster (100 machines, up to two tasks each) is then computed by the
// calibrated cluster model (mr/cluster_model.h) — see DESIGN.md for why
// this substitution preserves the figures' shapes. Wall-clock times of
// this process are also printed for reference.
//
// Scaling: datasets default to bench-friendly sizes; set CASM_BENCH_SCALE
// (a positive float) to scale row counts, e.g. CASM_BENCH_SCALE=10 for a
// longer, higher-fidelity run.
//
// Fault injection: set CASM_BENCH_INJECT_FAULTS=1 to fail the first map
// task and the first reduce task of every job on their first attempt.
// Results are unchanged (the engine replays the failed attempts); the
// knob exists to measure the retry path's overhead and to keep the
// fault-tolerant substrate exercised by the figure harnesses.
//
// Straggler injection: set CASM_BENCH_SLOW_TASKS=<seconds> (a positive
// float) to delay every job's first map task by that many seconds on its
// primary execution, with speculative execution enabled so a backup
// recovers the tail. Results are unchanged (the slowed primary loses the
// race and its output is discarded); the knob keeps the straggler
// defenses exercised by the same harnesses that exercise retries. See
// bench/fig_straggler.cc for the dedicated tail-latency experiment.

#ifndef CASM_BENCH_BENCH_UTIL_H_
#define CASM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/optimizer.h"
#include "core/parallel_evaluator.h"
#include "mr/cluster_model.h"
#include "queries/paper_data.h"
#include "queries/paper_queries.h"

namespace casm::bench {

/// Row-count scale factor from CASM_BENCH_SCALE (default 1.0).
inline double Scale() {
  const char* env = std::getenv("CASM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline int64_t ScaledRows(int64_t base) {
  return static_cast<int64_t>(static_cast<double>(base) * Scale());
}

/// The paper's testbed: 100 machines, up to two map/reduce tasks each.
struct ClusterConfig {
  int num_mappers = 50;
  int num_reducers = 50;
};

struct RunOutcome {
  ParallelEvalResult result;
  ExecutionPlan plan;
  double modeled_seconds = 0;
};

/// Runs a specific plan, returning engine metrics and the modeled cluster
/// response time. Aborts on failure (benchmarks only run supported
/// configurations).
/// True when CASM_BENCH_INJECT_FAULTS asks for first-attempt task faults.
inline bool InjectFaults() {
  const char* env = std::getenv("CASM_BENCH_INJECT_FAULTS");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Injected straggler latency in seconds from CASM_BENCH_SLOW_TASKS
/// (0 = none).
inline double SlowTaskSeconds() {
  const char* env = std::getenv("CASM_BENCH_SLOW_TASKS");
  if (env == nullptr) return 0;
  const double seconds = std::atof(env);
  return seconds > 0 ? seconds : 0;
}

inline RunOutcome RunPlan(const Workflow& wf, const Table& table,
                          const ExecutionPlan& plan,
                          const ClusterConfig& cluster,
                          ParallelEvalPhase phase = ParallelEvalPhase::kFull) {
  ParallelEvalOptions eval;
  eval.num_mappers = cluster.num_mappers;
  eval.num_reducers = cluster.num_reducers;
  eval.phase = phase;
  if (InjectFaults()) {
    eval.fault_injector = [](MapReduceTaskPhase, int task, int attempt) {
      if (task == 0 && attempt == 1) {
        return Status::Internal("injected bench fault");
      }
      return Status::OK();
    };
  }
  if (const double slow = SlowTaskSeconds(); slow > 0) {
    // Slow the first map task's primary execution; speculation launches a
    // fast backup that wins, so results are unchanged. The backup needs a
    // spare worker to overlap the (CPU-idle) sleeping straggler, so make
    // sure the pool has a few even on single-core machines.
    eval.num_threads = std::max(eval.num_threads, 4);
    const int max_attempts = eval.max_task_attempts;
    eval.slow_task_injector = [slow, max_attempts](MapReduceTaskPhase phase,
                                                   int task, int attempt) {
      const bool primary = attempt <= max_attempts;
      return phase == MapReduceTaskPhase::kMap && task == 0 && primary ? slow
                                                                       : 0.0;
    };
    eval.speculative_execution = true;
    eval.speculation_min_runtime_seconds = std::min(0.05, slow / 4);
  }
  Result<ParallelEvalResult> result = EvaluateParallel(wf, table, plan, eval);
  CASM_CHECK(result.ok()) << result.status().ToString();
  RunOutcome outcome{std::move(result).value(), plan, 0};
  outcome.modeled_seconds = ModeledResponseSeconds(
      outcome.result.metrics, cluster.num_mappers,
      ClusterCostParams::Default());
  return outcome;
}

/// Optimizes a plan for (wf, table) and runs it.
inline RunOutcome RunQuery(const Workflow& wf, const Table& table,
                           const ClusterConfig& cluster,
                           OptimizerOptions opt_overrides = {},
                           ParallelEvalPhase phase = ParallelEvalPhase::kFull) {
  OptimizerOptions opts = opt_overrides;
  opts.num_reducers = cluster.num_reducers;
  opts.num_records = table.num_rows();
  Result<ExecutionPlan> plan = OptimizePlan(wf, opts);
  CASM_CHECK(plan.ok()) << plan.status().ToString();
  return RunPlan(wf, table, plan.value(), cluster, phase);
}

/// Prints the standard benchmark header.
inline void PrintHeader(const char* figure, const char* description) {
  std::printf("# %s — %s\n", figure, description);
  std::printf("# scale=%.2f (set CASM_BENCH_SCALE to change)\n", Scale());
}

/// One emitted JSON row: a label plus numeric fields.
struct JsonRow {
  std::string label;
  std::vector<std::pair<std::string, double>> fields;
};

/// Appends the per-phase attempt-duration histogram of `metrics` (count
/// and p50/p90/p99/max seconds over every attempt, from the engine's
/// merged digests) to a JSON row's fields. Phases with no recorded
/// attempts contribute nothing.
inline void AppendAttemptHistogram(const MapReduceMetrics& metrics,
                                   JsonRow* row) {
  auto append = [row](const char* phase, const QuantileSketch& d) {
    if (d.count() == 0) return;
    const std::string p(phase);
    row->fields.emplace_back(p + "_attempts", static_cast<double>(d.count()));
    row->fields.emplace_back(p + "_attempt_p50_seconds", d.Quantile(0.5));
    row->fields.emplace_back(p + "_attempt_p90_seconds", d.Quantile(0.9));
    row->fields.emplace_back(p + "_attempt_p99_seconds", d.Quantile(0.99));
    row->fields.emplace_back(p + "_attempt_max_seconds", d.Max());
  };
  append("map", metrics.map_attempt_digest);
  append("reduce", metrics.reduce_attempt_digest);
}

/// Appends the run's resource-pressure counters to a JSON row. The
/// perf-regression gate (scripts/check_bench.py) treats these field
/// suffixes as *ceilings*: a fresh run may not exceed the committed
/// baseline value, so a default-configuration bench that silently starts
/// spilling or queueing on the memory budget trips CI.
inline void AppendResourceMetrics(const MapReduceMetrics& metrics,
                                  JsonRow* row) {
  row->fields.emplace_back(
      "emitter_spilled_bytes",
      static_cast<double>(metrics.emitter_spilled_bytes));
  row->fields.emplace_back("reduce_spilled_records",
                           static_cast<double>(metrics.spilled_records));
  row->fields.emplace_back("budget_admission_waits",
                           static_cast<double>(metrics.admission_waits));
}

/// Writes `rows` to <dir>/<name>.json when CASM_BENCH_JSON names a
/// directory (CI's bench-smoke job uploads these as workflow artifacts);
/// no-op otherwise. Labels and keys must not need JSON escaping.
inline void MaybeWriteJson(const std::string& name,
                           const std::vector<JsonRow>& rows) {
  const char* dir = std::getenv("CASM_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  CASM_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f, "{\"figure\": \"%s\", \"scale\": %.6g, \"rows\": [",
               name.c_str(), Scale());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s\n  {\"label\": \"%s\"", i == 0 ? "" : ",",
                 rows[i].label.c_str());
    for (const auto& [key, value] : rows[i].fields) {
      std::fprintf(f, ", \"%s\": %.17g", key.c_str(), value);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace casm::bench

#endif  // CASM_BENCH_BENCH_UTIL_H_
