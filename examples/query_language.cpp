// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// The full text-in, CSV-out path: parse an aggregation workflow from its
// textual form, ingest records from CSV, ask the optimizer to explain its
// plan choice, evaluate in parallel, and export a measure as CSV. Also
// emits the workflow as Graphviz DOT (the paper's Figure 1 rendering).
//
// Scenario: support-ticket analytics over (Team, Severity, Minutes, Day)
// with a trailing-week backlog trend per team.

#include <cstdio>

#include "core/optimizer.h"
#include "core/parallel_evaluator.h"
#include "data/generator.h"
#include "io/csv.h"
#include "measure/workflow_parser.h"

using namespace casm;

int main() {
  // 12 teams in 3 orgs; severity 0..4; handling minutes 0..599; 8 weeks of
  // days with a week level.
  std::vector<int64_t> team_org(12);
  for (int64_t t = 0; t < 12; ++t) team_org[static_cast<size_t>(t)] = t / 4;
  SchemaPtr schema = MakeSchemaOrDie({
      Hierarchy::Nominal("Team", 12, {team_org}, {"team", "org"}).value(),
      Hierarchy::Numeric("Severity", 5, {}, {"level"}).value(),
      Hierarchy::Numeric("Minutes", 600, {60}, {"minute", "hourbucket"})
          .value(),
      Hierarchy::Numeric("Day", 56, {7}, {"day", "week"}).value(),
  });

  // 1. The query, in the textual workflow language.
  const char* query = R"(
    # Ticket load and handling time per team and day.
    tickets    := COUNT(Severity)                 AT Team:team, Day:day;
    effort     := SUM(Minutes)                    AT Team:team, Day:day;
    per_ticket := effort / tickets                AT Team:team, Day:day;
    trend      := AVG(per_ticket OVER Day[-6,0])  AT Team:team, Day:day;
    org_weekly := AVG(effort)                     AT Team:org, Day:week;
  )";
  Result<Workflow> wf = ParseWorkflow(schema, query);
  if (!wf.ok()) {
    std::fprintf(stderr, "parse error: %s\n", wf.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed workflow:\n%s\n", FormatWorkflow(wf.value()).c_str());
  std::printf("dot:\n%s\n", wf->ToDot().c_str());

  // 2. Records from CSV (here: generated, rendered to CSV, re-ingested —
  // in production this would be a file via ReadTableCsvFile).
  Table generated = GenerateUniformTable(schema, 30'000, 424242);
  std::string csv = "Team,Severity,Minutes,Day\n";
  for (int64_t r = 0; r < generated.num_rows(); ++r) {
    const int64_t* row = generated.row(r);
    csv += std::to_string(row[0]) + "," + std::to_string(row[1]) + "," +
           std::to_string(row[2]) + "," + std::to_string(row[3]) + "\n";
  }
  Result<Table> table = ReadTableCsv(schema, csv);
  if (!table.ok()) {
    std::fprintf(stderr, "csv error: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %lld rows from CSV\n",
              static_cast<long long>(table->num_rows()));

  // 3. Plan with explanation.
  OptimizerOptions opts;
  opts.num_reducers = 6;
  opts.num_records = table->num_rows();
  Result<std::string> explanation = ExplainPlans(wf.value(), opts);
  if (explanation.ok()) std::printf("%s\n", explanation->c_str());
  Result<ExecutionPlan> plan = OptimizePlan(wf.value(), opts);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  // 4. Evaluate and export the trend measure as CSV.
  ParallelEvalOptions eval;
  eval.num_mappers = 4;
  eval.num_reducers = 6;
  Result<ParallelEvalResult> result =
      EvaluateParallel(wf.value(), table.value(), plan.value(), eval);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  int trend = wf->MeasureIndex("trend").value();
  std::string out_csv = WriteMeasureCsv(wf.value(), result->results, trend);
  // Print the header and the first five rows.
  size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    size_t next = out_csv.find('\n', pos);
    std::printf("%s\n", out_csv.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("... (%lld trend rows total)\n",
              static_cast<long long>(result->results.values(trend).size()));
  return 0;
}
