// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Sensor-fleet monitoring: sliding-window anomaly scores over telemetry.
// A fleet of sensors reports (Sensor, Reading, Time) samples; we compute,
// per sensor and minute:
//
//   avg_r   : AVG(Reading)                       per (sensor, minute)
//   var_r   : VARIANCE(Reading)                  per (sensor, minute)
//   base    : 30-minute trailing AVG of avg_r    per (sensor, minute)
//   score   : avg_r / base (drift vs baseline)   per (sensor, minute)
//   rack_max: MAX of score                       per (rack, 10-minute bin)
//
// The two chained sliding windows make this the worst case for the
// distribution scheme: the derived key needs the trailing half hour of
// every minute, and the clustering factor controls the duplication. The
// example prints the key the optimizer derives and the replication the
// engine actually measured.

#include <cstdio>

#include "core/key_derivation.h"
#include "core/optimizer.h"
#include "core/parallel_evaluator.h"
#include "data/generator.h"

using namespace casm;

int main() {
  // 512 sensors in 32 racks of 16 (numeric id with a divisor hierarchy);
  // readings 0..1023; 2 days of time at minute granularity with a
  // 10-minute level used by the rack rollup.
  SchemaPtr schema = MakeSchemaOrDie({
      Hierarchy::Numeric("Sensor", 512, {16}, {"sensor", "rack"}).value(),
      Hierarchy::Numeric("Reading", 1024, {64}, {"raw", "band"}).value(),
      Hierarchy::Numeric("Time", 2 * 1440, {10, 60}, {"minute", "bin10", "hour"})
          .value(),
  });
  Table telemetry = GenerateUniformTable(schema, 400'000, /*seed=*/99);

  WorkflowBuilder b(schema);
  Granularity per_minute =
      Granularity::Of(*schema, {{"Sensor", "sensor"}, {"Time", "minute"}})
          .value();
  Granularity per_rack_bin =
      Granularity::Of(*schema, {{"Sensor", "rack"}, {"Time", "bin10"}})
          .value();
  int avg_r = b.AddBasic("avg_r", per_minute, AggregateFn::kAvg, "Reading");
  b.AddBasic("var_r", per_minute, AggregateFn::kVariance, "Reading");
  int base = b.AddSourceAggregate("base", per_minute, AggregateFn::kAvg,
                                  {b.Sibling(avg_r, "Time", -29, 0)});
  int score = b.AddExpression(
      "score", per_minute, Expression::Source(0) / Expression::Source(1),
      {WorkflowBuilder::Self(avg_r), WorkflowBuilder::Self(base)});
  b.AddSourceAggregate("rack_max", per_rack_bin, AggregateFn::kMax,
                       {WorkflowBuilder::ChildParent(score)});
  Result<Workflow> wf = std::move(b).Build();
  if (!wf.ok()) {
    std::fprintf(stderr, "%s\n", wf.status().ToString().c_str());
    return 1;
  }

  // Show the derivation: every per-measure key plus the query key.
  KeyDerivation derivation = DeriveDistributionKeys(wf.value());
  std::printf("per-measure feasible keys:\n");
  for (int i = 0; i < wf->num_measures(); ++i) {
    std::printf("  %-8s -> %s\n", wf->measure(i).name.c_str(),
                derivation.per_measure[static_cast<size_t>(i)]
                    .ToString(*schema)
                    .c_str());
  }
  std::printf("query key: %s\n",
              derivation.query_key.ToString(*schema).c_str());

  OptimizerOptions opts;
  opts.num_reducers = 12;
  opts.num_records = telemetry.num_rows();
  Result<ExecutionPlan> plan = OptimizePlan(wf.value(), opts);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer: %s (analytic d=%lld)\n",
              plan->ToString(*schema).c_str(),
              static_cast<long long>(plan->AnnotationWidth()));

  ParallelEvalOptions eval;
  eval.num_mappers = 8;
  eval.num_reducers = 12;
  Result<ParallelEvalResult> result =
      EvaluateParallel(wf.value(), telemetry, plan.value(), eval);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "replication=%.3f (analytic (d+cf)/cf=%.3f), %lld blocks, "
      "%lld results filtered as foreign\n",
      result->metrics.ReplicationFactor(),
      static_cast<double>(plan->AnnotationWidth() + plan->clustering_factor) /
          static_cast<double>(plan->clustering_factor),
      static_cast<long long>(result->blocks_evaluated),
      static_cast<long long>(result->results_filtered));

  // Top anomaly scores per rack: scan rack_max for the biggest values.
  int rack_max = wf->MeasureIndex("rack_max").value();
  double best = -1;
  Coords best_coords;
  for (const auto& [coords, value] : result->results.values(rack_max)) {
    if (value > best) {
      best = value;
      best_coords = coords;
    }
  }
  if (!best_coords.empty()) {
    std::printf("highest rack anomaly score: %s = %.4f\n",
                CoordsToString(*schema, wf->measure(rack_max).granularity,
                               best_coords)
                    .c_str(),
                best);
  }
  return 0;
}
