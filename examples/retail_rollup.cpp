// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Retail OLAP roll-up: classic decision-support aggregation over a sales
// cube (Store, Product, Quantity, Time) with nominal hierarchies on both
// the store and product dimensions:
//
//   revenue      : per (store, product, day)       SUM(Quantity)
//   region_rev   : per (region, category, day)     SUM of revenue
//   share        : per (store, product, day)       revenue / region_rev
//   weekly       : per (region, category, week)    AVG of region_rev
//   distinct_q   : per (region, day)               DISTINCT-COUNT(Quantity)
//
// Because distinct_q is holistic, early aggregation is rejected for this
// query — the example demonstrates the error path and then runs without
// it, comparing both sides against the reference evaluator.

#include <cstdio>

#include "core/optimizer.h"
#include "core/parallel_evaluator.h"
#include "data/generator.h"
#include "local/reference_evaluator.h"

using namespace casm;

int main() {
  // 64 stores in 8 regions; 256 products in 16 categories; quantities
  // 0..99; 28 days with a week level.
  std::vector<int64_t> store_region(64), product_category(256);
  for (int64_t s = 0; s < 64; ++s) store_region[static_cast<size_t>(s)] = s / 8;
  for (int64_t p = 0; p < 256; ++p) {
    product_category[static_cast<size_t>(p)] = p / 16;
  }
  SchemaPtr schema = MakeSchemaOrDie({
      Hierarchy::Nominal("Store", 64, {store_region}, {"store", "region"})
          .value(),
      Hierarchy::Nominal("Product", 256, {product_category},
                         {"product", "category"})
          .value(),
      Hierarchy::Numeric("Quantity", 100, {}, {"qty"}).value(),
      Hierarchy::Numeric("Time", 28, {7}, {"day", "week"}).value(),
  });
  Table sales = GenerateUniformTable(schema, 250'000, /*seed=*/12);

  WorkflowBuilder b(schema);
  Granularity fine = Granularity::Of(*schema, {{"Store", "store"},
                                               {"Product", "product"},
                                               {"Time", "day"}})
                         .value();
  Granularity regional = Granularity::Of(*schema, {{"Store", "region"},
                                                   {"Product", "category"},
                                                   {"Time", "day"}})
                             .value();
  Granularity weekly_g = Granularity::Of(*schema, {{"Store", "region"},
                                                   {"Product", "category"},
                                                   {"Time", "week"}})
                             .value();
  Granularity region_day =
      Granularity::Of(*schema, {{"Store", "region"}, {"Time", "day"}}).value();

  int revenue = b.AddBasic("revenue", fine, AggregateFn::kSum, "Quantity");
  int region_rev =
      b.AddSourceAggregate("region_rev", regional, AggregateFn::kSum,
                           {WorkflowBuilder::ChildParent(revenue)});
  b.AddExpression(
      "share", fine, Expression::Source(0) / Expression::Source(1),
      {WorkflowBuilder::Self(revenue), WorkflowBuilder::ParentChild(region_rev)});
  b.AddSourceAggregate("weekly", weekly_g, AggregateFn::kAvg,
                       {WorkflowBuilder::ChildParent(region_rev)});
  b.AddBasic("distinct_q", region_day, AggregateFn::kDistinctCount,
             "Quantity");
  Result<Workflow> wf = std::move(b).Build();
  if (!wf.ok()) {
    std::fprintf(stderr, "%s\n", wf.status().ToString().c_str());
    return 1;
  }
  std::printf("workflow:\n%s\n", wf->ToString().c_str());

  OptimizerOptions opts;
  opts.num_reducers = 8;
  opts.num_records = sales.num_rows();
  ExecutionPlan plan = OptimizePlan(wf.value(), opts).value();
  std::printf("plan: %s\n", plan.ToString(*schema).c_str());

  // Early aggregation is impossible here (distinct_q is holistic); show
  // the library rejecting it rather than silently computing wrong results.
  ExecutionPlan early = plan;
  early.early_aggregation = true;
  ParallelEvalOptions eval;
  eval.num_mappers = 6;
  eval.num_reducers = 8;
  Result<ParallelEvalResult> rejected =
      EvaluateParallel(wf.value(), sales, early, eval);
  std::printf("early aggregation correctly rejected: %s\n",
              rejected.status().ToString().c_str());

  Result<ParallelEvalResult> result =
      EvaluateParallel(wf.value(), sales, plan, eval);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Cross-check against the reference evaluator (cheap at this size).
  MeasureResultSet expected = EvaluateReference(wf.value(), sales);
  Status match = CompareResultSets(expected, result->results, 1e-9);
  std::printf("reference cross-check: %s\n", match.ToString().c_str());

  // Show the weekly roll-up for region 0, category 0.
  int weekly = wf->MeasureIndex("weekly").value();
  std::printf("weekly regional revenue (region 0, category 0):\n");
  for (int64_t week = 0; week < 4; ++week) {
    auto it = result->results.values(weekly).find(Coords{0, 0, 0, week});
    if (it != result->results.values(weekly).end()) {
      std::printf("  week %lld: %.1f\n", static_cast<long long>(week),
                  it->second);
    }
  }
  return match.ok() ? 0 : 1;
}
