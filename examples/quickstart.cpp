// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Quickstart: the paper's running weblog-analysis example (measures
// M1-M4 over search session logs), evaluated in parallel.
//
//   M1: per (keyword, minute)  median page-click count
//   M2: per (keyword, hour)    median ad-click count
//   M3: per (keyword, minute)  M1 / M2 of the containing hour
//   M4: per (keyword, minute)  trailing ten-minute moving average of M3
//
// Shows the full pipeline: build a workflow, let the optimizer derive the
// minimal feasible (overlapping) distribution key and clustering factor,
// evaluate with the MapReduce engine, and read the results.

#include <cstdio>

#include "core/optimizer.h"
#include "core/parallel_evaluator.h"
#include "queries/paper_data.h"
#include "queries/paper_queries.h"

int main() {
  using namespace casm;

  // 1. A synthetic search-session log: (Keyword, PageCount, AdCount, Time).
  const int64_t kRows = 200'000;
  Table log = WeblogTable(kRows, /*seed=*/2026);
  std::printf("generated %lld session records\n",
              static_cast<long long>(log.num_rows()));

  // 2. The M1-M4 aggregation workflow.
  Workflow workflow = MakeWeblogWorkflow();
  std::printf("workflow:\n%s\n", workflow.ToString().c_str());

  // 3. Ask the optimizer for a distribution scheme. M4's sliding window
  // forces an overlapping key; the optimizer also picks the clustering
  // factor that balances duplication against parallelism.
  OptimizerOptions opt;
  opt.num_reducers = 8;
  opt.num_records = log.num_rows();
  Result<ExecutionPlan> plan = OptimizePlan(workflow, opt);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimizer failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer chose %s\n",
              plan->ToString(*workflow.schema()).c_str());

  // 4. Evaluate in parallel.
  ParallelEvalOptions eval;
  eval.num_mappers = 8;
  eval.num_reducers = 8;
  // Durable result checkpointing when CASM_CHECKPOINT_DIR is set: a
  // rerun of the same (query, input) restores instead of recomputing.
  eval.checkpoint = CheckpointOptionsFromEnv();
  Result<ParallelEvalResult> result =
      EvaluateParallel(workflow, log, plan.value(), eval);
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("evaluated %lld blocks, metrics: %s\n",
              static_cast<long long>(result->blocks_evaluated),
              result->metrics.ToString().c_str());

  // 5. Read a few M4 values (the final moving average).
  const Workflow& wf = workflow;
  int m4 = wf.MeasureIndex("M4").value();
  std::vector<MeasureResult> m4_rows = result->results.Sorted(m4);
  std::printf("M4 produced %zu (keyword, minute) results; first five:\n",
              m4_rows.size());
  for (size_t i = 0; i < m4_rows.size() && i < 5; ++i) {
    std::printf("  %s = %.4f\n",
                CoordsToString(*wf.schema(), wf.measure(m4).granularity,
                               m4_rows[i].coords)
                    .c_str(),
                m4_rows[i].value);
  }
  return 0;
}
