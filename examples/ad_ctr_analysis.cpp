// Copyright 2026 The CASM Authors. Licensed under the Apache License 2.0.
//
// Ad click-through analysis — the targeted-advertising scenario from the
// paper's introduction. An ad-serving log (Campaign, Position, Clicked,
// Time) is analyzed with a composite measure query:
//
//   impressions : per (campaign, hour)        COUNT
//   clicks      : per (campaign, hour)        SUM(Clicked)
//   ctr         : per (campaign, hour)        clicks / impressions
//   ctr_smooth  : per (campaign, hour)        6-hour trailing AVG of ctr
//   ctr_daily   : per (campaign-group, day)   AVG of ctr
//
// This exercises self, sibling and child/parent relationships at once, and
// shows how to detect skew and let run-time sampling pick the plan —
// ad logs are notoriously skewed towards big campaigns.

#include <cstdio>

#include "core/optimizer.h"
#include "core/parallel_evaluator.h"
#include "core/skew.h"
#include "data/generator.h"

using namespace casm;

namespace {

SchemaPtr AdSchema() {
  // 200 campaigns in 20 groups of 10 (nominal); 8 ad positions; a click
  // flag; 14 days of minutes.
  std::vector<int64_t> campaign_group(200);
  for (int64_t c = 0; c < 200; ++c) campaign_group[static_cast<size_t>(c)] = c / 10;
  return MakeSchemaOrDie({
      Hierarchy::Nominal("Campaign", 200, {campaign_group},
                         {"campaign", "group"})
          .value(),
      Hierarchy::Numeric("Position", 8, {}, {"slot"}).value(),
      Hierarchy::Numeric("Clicked", 2, {}, {"flag"}).value(),
      Hierarchy::Numeric("Time", 14 * 1440, {60, 1440},
                         {"minute", "hour", "day"})
          .value(),
  });
}

}  // namespace

int main() {
  SchemaPtr schema = AdSchema();

  // Zipf-distributed campaigns: a few campaigns dominate the traffic.
  Result<Table> log = GenerateTable(
      schema, 300'000,
      {AttributeDistribution::Zipf(1.05), AttributeDistribution::Uniform(),
       AttributeDistribution::Uniform(), AttributeDistribution::Uniform()},
      /*seed=*/7);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }

  WorkflowBuilder b(schema);
  Granularity hourly =
      Granularity::Of(*schema, {{"Campaign", "campaign"}, {"Time", "hour"}})
          .value();
  Granularity daily =
      Granularity::Of(*schema, {{"Campaign", "group"}, {"Time", "day"}})
          .value();
  int impressions =
      b.AddBasic("impressions", hourly, AggregateFn::kCount, "Clicked");
  int clicks = b.AddBasic("clicks", hourly, AggregateFn::kSum, "Clicked");
  int ctr = b.AddExpression(
      "ctr", hourly, Expression::Source(0) / Expression::Source(1),
      {WorkflowBuilder::Self(clicks), WorkflowBuilder::Self(impressions)});
  b.AddSourceAggregate("ctr_smooth", hourly, AggregateFn::kAvg,
                       {b.Sibling(ctr, "Time", -5, 0)});
  b.AddSourceAggregate("ctr_daily", daily, AggregateFn::kAvg,
                       {WorkflowBuilder::ChildParent(ctr)});
  Result<Workflow> wf = std::move(b).Build();
  if (!wf.ok()) {
    std::fprintf(stderr, "%s\n", wf.status().ToString().c_str());
    return 1;
  }
  std::printf("workflow:\n%s\n", wf->ToString().c_str());

  // Candidate plans + run-time sampling (§V): the Zipf campaigns make the
  // workload skewed, so let simulated dispatch pick the plan.
  OptimizerOptions opts;
  opts.num_reducers = 16;
  opts.num_records = log->num_rows();
  Result<std::vector<ExecutionPlan>> candidates =
      CandidatePlans(wf.value(), opts);
  if (!candidates.ok()) {
    std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
    return 1;
  }
  SamplingOptions sampling;
  sampling.sample_fraction = 0.05;
  Result<ExecutionPlan> plan = ChoosePlanBySampling(
      wf.value(), log.value(), candidates.value(), opts.num_reducers,
      sampling);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::vector<int64_t> loads = SimulateDispatch(
      wf.value(), log.value(), plan.value(), opts.num_reducers, sampling);
  std::printf("sampling chose %s (estimated skew ratio %.2f)\n",
              plan->ToString(*schema).c_str(), SkewRatio(loads));

  ParallelEvalOptions eval;
  eval.num_mappers = 8;
  eval.num_reducers = opts.num_reducers;
  Result<ParallelEvalResult> result =
      EvaluateParallel(wf.value(), log.value(), plan.value(), eval);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Report the smoothed CTR of the heaviest campaign's first day.
  int ctr_smooth = wf->MeasureIndex("ctr_smooth").value();
  const MeasureValueMap& values = result->results.values(ctr_smooth);
  std::printf("%zu smoothed hourly CTR values; campaign 0, first 24 hours:\n",
              values.size());
  for (int64_t hour = 0; hour < 24; ++hour) {
    auto it = values.find(Coords{0, 0, 0, hour});
    if (it != values.end()) {
      std::printf("  hour %2lld: %.4f\n", static_cast<long long>(hour),
                  it->second);
    }
  }
  std::printf("replication=%.3f max_reducer=%lld\n",
              result->metrics.ReplicationFactor(),
              static_cast<long long>(result->metrics.MaxReducerPairs()));
  return 0;
}
